"""Trace-driven cluster simulator (paper section 4.3).

The simulator replays a workload against a placement strategy deployed on
a cluster topology.  It owns the traffic accountant (so every strategy is
measured identically), applies social-graph mutations, fires the periodic
maintenance ticks, and optionally samples the replica count of tracked views
(the flash-event experiment).

Workloads arrive in one of two shapes and replay byte-identically:

* an :class:`~repro.workload.stream.EventStream` — the columnar data path.
  The replay loop iterates the typed-array columns of each chunk directly,
  constructing **no per-event objects**; this is how paper-scale runs
  (tens of millions of events) stay within a constant workload memory
  budget;
* a :class:`~repro.workload.requests.RequestLog` — the legacy object list,
  kept as a thin compatibility adapter for hand-built logs and older
  callers, replayed by the original type-dispatched object loop.

Stream replay itself is **batch-first**: each chunk is segmented into
runs of requests bounded by the next fault and maintenance-tick
timestamps and by edge-mutation events, and whole runs are dispatched
through the strategy's ``execute_request_batch`` kernel (run boundaries
are found at C speed — a timestamp bisect plus byte scans per run).
Whenever per-event observation is required — post-request hooks (even
ones registered mid-run by a pre-tick hook), tracked views, or
``batch_replay=False`` in the config — the simulator replays per event;
while a persistent store is active, write runs are replayed per event too
(each write is mirrored into the store in order) but read runs stay
batched.  Both dispatch shapes drive the identical sequence of
strategy/store state transitions, so batched and per-event replay produce
byte-identical results.

On top of the benign replay the simulator hosts the *scenario* layer
(:mod:`repro.scenarios`): an attached scenario may reshape the workload
(diurnal load, flash crowds — chunk-level stream transforms) and inject
infrastructure faults — server crashes, graceful drains, rejoins — which
the simulator applies at their simulated timestamps, interleaved with
maintenance ticks.  The simulator keeps the authoritative server up/down
mask, drives the strategy's evacuation hooks, and wires crashes into the
persistence layer: writes are mirrored into a
:class:`~repro.persistence.backend.PersistentStore` as they execute, and
views whose only replica died are re-fetched from that store in simulated
time (WAL-driven recovery, paper sections 2.2 and 3.3).

Instrumentation hooks (``add_pre_tick_hook`` / ``add_post_request_hook``)
let tests and experiments observe a run without subclassing.
"""

from __future__ import annotations

import math
import os
from bisect import bisect_left
from collections.abc import Callable
from itertools import compress
from typing import TYPE_CHECKING

from ..config import SimulationConfig
from ..constants import MINUTE
from ..exceptions import ShardFallbackError, SimulationError
from ..baselines.base import PlacementStrategy
from ..persistence.backend import PersistentStore
from ..socialgraph.graph import SocialGraph
from ..store.memory import MemoryBudget
from ..topology.base import ClusterTopology
from ..traffic.accounting import TrafficAccountant
from ..workload.requests import EdgeAdded, EdgeRemoved, ReadRequest, Request, RequestLog, WriteRequest
from ..workload.stream import (
    EventStream,
    KIND_EDGE_ADD,
    KIND_EDGE_REMOVE,
    KIND_READ,
    KIND_WRITE,
    kind_run_end,
    request_run_end,
    row_to_request,
)
from .clock import SimulationClock
from .results import FaultRecord, ReplicaTimeline, SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scenarios.base import Scenario
    from ..scenarios.events import FaultEvent
    from .shard import ShardContext

#: Owner-map byte marking a user id outside the initial social graph.  The
#: partitioned replay loop treats any event touching such a user as an
#: open-universe violation and falls back to replicated execution, so the
#: sentinel bounds partitioned runs to 255 shards.
UNOWNED = 0xFF


class ClusterSimulator:
    """Replays a workload (stream or request log) against one strategy."""

    def __init__(
        self,
        topology: ClusterTopology,
        graph: SocialGraph,
        strategy: PlacementStrategy,
        config: SimulationConfig | None = None,
        scenario: "Scenario | None" = None,
        persistent_store: PersistentStore | None = None,
        shard_context: "ShardContext | None" = None,
    ) -> None:
        self.topology = topology
        self.graph = graph
        self.strategy = strategy
        self.config = config or SimulationConfig()
        self.scenario = scenario
        self.accountant = TrafficAccountant(
            topology,
            bucket_width=self.config.bucket_width,
            measure_from=self.config.measure_from,
        )
        self.budget = MemoryBudget(
            views=graph.num_users,
            extra_memory_pct=self.config.extra_memory_pct,
            servers=len(topology.servers),
        )
        self.persistent_store = persistent_store
        self._prepared = False
        #: Per-position server availability mask (True = in service).
        self.server_up: list[bool] = [True] * len(topology.servers)
        #: Faults applied during the run, in order.
        self.fault_records: list[FaultRecord] = []
        self._fault_events: list["FaultEvent"] = []
        self._next_fault = 0
        self._pre_tick_hooks: list[Callable[[float], None]] = []
        self._post_request_hooks: list[Callable[[Request], None]] = []
        #: Views whose replica count is sampled over time (flash events).
        self._tracked_views: dict[int, ReplicaTimeline] = {}
        #: Sampling period of tracked views (the paper samples every 10 min).
        self.tracking_period: float = 10 * MINUTE
        #: Read counts of tracked views since the previous sample.
        self._tracked_reads: dict[int, int] = {}
        #: Follower sets of tracked views, maintained incrementally on edge
        #: events so counting a read is a set-membership check instead of an
        #: O(tracked x following) scan of the reader's adjacency.
        self._tracked_followers: dict[int, set[int]] = {}
        self._next_sample: float = self.tracking_period
        #: Request handlers keyed on the concrete request type (object-loop
        #: hot path: one dict lookup per request instead of an isinstance
        #: chain).
        self._dispatch: dict[type, Callable[[Request], None]] = {
            ReadRequest: self._apply_read,
            WriteRequest: self._apply_write,
            EdgeAdded: self._apply_edge_added,
            EdgeRemoved: self._apply_edge_removed,
        }
        self._reads_executed = 0
        self._writes_executed = 0
        #: Sharded-replay context (``repro.simulator.shard``): ownership map
        #: for partitioned request execution plus the worker's heartbeat.
        self._shard_context = shard_context
        #: Per-chunk progress callback ``(events_done, sim_time)`` — served
        #: by both the batched and the partitioned loop, so replicated-mode
        #: shard workers report liveness through the standard path too.
        self._chunk_callback = (
            shard_context.heartbeat if shard_context is not None else None
        )
        #: In a partitioned run every worker replays the full system-event
        #: stream (faults, ticks, edge mutations) to keep placement state
        #: replicated, but only shard 0 may *account* for it — the others
        #: mute the accountant around those sections so the merged traffic
        #: counts each system message exactly once.
        self._shard_system_mute = (
            shard_context is not None
            and shard_context.partitioned
            and shard_context.shard_id != 0
        )
        #: Opt-in auditing mode: with ``REPRO_CHECK_TABLES=1`` in the
        #: environment, the placement tables of table-backed strategies are
        #: integrity-checked after every maintenance tick and fault burst.
        self._check_tables = os.environ.get(
            "REPRO_CHECK_TABLES", ""
        ).strip().lower() not in ("", "0", "false", "no", "off")

    # ------------------------------------------------------------------ setup
    def prepare(self) -> None:
        """Bind the strategy to the cluster and build the initial placement."""
        if self._prepared:
            return
        if self._shard_system_mute:
            # Initial placement is deterministic construction, not traffic,
            # but mute it anyway on non-primary shards: a strategy that did
            # record here would otherwise be counted once per worker.
            self.accountant.push_mute()
        try:
            self.strategy.bind(
                self.topology, self.graph, self.accountant, self.budget, seed=self.config.seed
            )
            self.strategy.batch_tick = self.config.batch_tick
            self.strategy.build_initial_placement()
        finally:
            if self._shard_system_mute:
                self.accountant.pop_mute()
        self._prepared = True

    def track_view(self, user: int) -> None:
        """Sample the replica count of ``user``'s view during the run."""
        self._tracked_views[user] = ReplicaTimeline(user=user)
        self._tracked_reads[user] = 0
        self._tracked_followers[user] = (
            set(self.graph.followers(user)) if self.graph.has_user(user) else set()
        )

    def reset_traffic(self) -> None:
        """Clear the traffic counters (e.g. after a warm-up phase)."""
        self.accountant.reset()

    # ------------------------------------------------------------------ hooks
    def add_pre_tick_hook(self, hook: Callable[[float], None]) -> None:
        """Run ``hook(tick_time)`` before every maintenance tick."""
        self._pre_tick_hooks.append(hook)

    def add_post_request_hook(self, hook: Callable[[Request], None]) -> None:
        """Run ``hook(request)`` after every executed request.

        On the columnar path the request object is constructed on demand
        (only when at least one hook is registered), so instrumented runs
        see the same objects the legacy path replays.
        """
        self._post_request_hooks.append(hook)

    # ----------------------------------------------------------------- faults
    def available_server_positions(self) -> tuple[int, ...]:
        """Positions of the storage servers currently in service."""
        return tuple(p for p, up in enumerate(self.server_up) if up)

    def crash_server(self, position: int, now: float, graceful: bool = False) -> FaultRecord:
        """Take a storage server out of service and recover its views.

        The strategy evacuates the server (views with surviving replicas
        keep serving; sole replicas are re-placed).  After an abrupt crash
        the re-placed views are additionally fetched from the persistent
        store — the in-memory copy is gone, so the write-ahead log is the
        only source of truth for them.
        """
        self._check_position(position)
        if not self.server_up[position]:
            raise SimulationError(f"server position {position} is already down")
        if sum(self.server_up) <= 1:
            raise SimulationError("cannot take down the last available server")
        plan = self.strategy.on_server_down(position, now, graceful=graceful)
        self.server_up[position] = False
        if plan.recoverable_from_disk:
            store = self._ensure_store()
            for user in plan.recoverable_from_disk:
                store.fetch_view(user)
        record = FaultRecord(
            timestamp=now,
            kind="drain" if graceful else "crash",
            position=position,
            views_from_memory=len(plan.recoverable_from_memory),
            views_from_disk=len(plan.recoverable_from_disk),
        )
        self.fault_records.append(record)
        return record

    def drain_server(self, position: int, now: float) -> FaultRecord:
        """Gracefully remove a server: views are copied out, nothing is lost."""
        return self.crash_server(position, now, graceful=True)

    def restore_server(self, position: int, now: float) -> FaultRecord:
        """Bring a previously departed server back (with empty memory)."""
        self._check_position(position)
        if self.server_up[position]:
            raise SimulationError(f"server position {position} is not down")
        self.strategy.on_server_up(position, now)
        self.server_up[position] = True
        record = FaultRecord(timestamp=now, kind="restore", position=position)
        self.fault_records.append(record)
        return record

    def _check_position(self, position: int) -> None:
        if not 0 <= position < len(self.server_up):
            raise SimulationError(f"invalid server position {position}")

    def _ensure_store(self) -> PersistentStore:
        """The persistent store, created on first need.

        A store created here starts empty: views recovered from it reflect
        only the writes mirrored since the run began.  Pass a pre-seeded
        store to the constructor to model older durable state.
        """
        if self.persistent_store is None:
            self.persistent_store = PersistentStore()
        return self.persistent_store

    # -------------------------------------------------------------------- run
    def run(self, workload: "EventStream | RequestLog") -> SimulationResult:
        """Replay a workload and return the measured result.

        The workload must be sorted by timestamp.  Graph mutations are
        applied to the simulator's graph before the strategy is notified,
        and the strategy's periodic maintenance runs every ``tick_period``
        of simulated time.  An attached scenario first transforms the
        workload, then its fault events are applied at their timestamps,
        interleaved with the events and maintenance ticks.

        Both workload shapes drive the identical sequence of strategy,
        store and hook calls, so streaming and materialised replay of the
        same events produce byte-identical results.
        """
        self.prepare()
        self._reads_executed = 0
        self._writes_executed = 0
        clock = SimulationClock(tick_period=self.config.tick_period)
        if isinstance(workload, EventStream):
            stream = self._stage_scenario_stream(workload)
            executed, first_time, last_time = self._replay_stream(stream, clock)
        else:
            log = self._stage_scenario_log(workload)
            executed, first_time, last_time = self._replay_log(log, clock)
        return self._finish(clock, executed, first_time, last_time)

    def _replay_log(
        self, log: RequestLog, clock: SimulationClock
    ) -> tuple[int, float, float]:
        """The legacy object loop: replay request objects via type dispatch."""
        dispatch = self._dispatch
        post_hooks = self._post_request_hooks
        for request in log:
            timestamp = request.timestamp
            self._apply_due_faults(clock, timestamp)
            self._advance_ticks(clock, timestamp)
            self._sample_tracked(timestamp)

            handler = dispatch.get(type(request))
            if handler is None:  # pragma: no cover - defensive
                raise SimulationError(f"unknown request type {type(request).__name__}")
            handler(request)
            for hook in post_hooks:
                hook(request)
        if len(log):
            return len(log), log[0].timestamp, log[len(log) - 1].timestamp
        return 0, 0.0, 0.0

    def _replay_stream(
        self, stream: EventStream, clock: SimulationClock
    ) -> tuple[int, float, float]:
        """Replay a stream: batched run dispatch, or per event when needed.

        The batched loop requires that no per-event observer is attached:
        post-request hooks see one request object per event and tracked
        views count individual reads, so either forces the per-event loop
        (as does ``batch_replay=False``).  Both loops drive the identical
        sequence of strategy, store and hook calls, so they produce
        byte-identical results.
        """
        context = self._shard_context
        if context is not None and context.partitioned:
            if (
                not self.config.batch_replay
                or self._post_request_hooks
                or self._tracked_views
            ):
                raise SimulationError(
                    "partitioned shard replay requires the batched path: no "
                    "post-request hooks, no tracked views, batch_replay=True"
                )
            return self._replay_stream_sharded(stream, clock, context)
        if (
            self.config.batch_replay
            and not self._post_request_hooks
            and not self._tracked_views
        ):
            return self._replay_stream_batched(stream, clock)
        return self._replay_stream_events(stream, clock)

    def _replay_stream_batched(
        self, stream: EventStream, clock: SimulationClock
    ) -> tuple[int, float, float]:
        """The chunk-native loop: segment chunks into dispatchable runs.

        A run is the longest span of read/write events that reaches neither
        the next fault/tick timestamp (one bisect on the timestamp column)
        nor an edge-mutation event (two C-speed byte scans); whole runs go
        through the strategy's ``execute_request_batch`` kernel, and edge
        mutations are applied per event — they re-shape the graph the next
        run executes against.  While a persistent store is active, the
        chunk is instead segmented into homogeneous kind runs: read runs
        stay batched (reads never touch the store), write runs are
        replayed per event so every write is mirrored into the store in
        order.
        """
        strategy = self.strategy
        execute_read = strategy.execute_read
        execute_write = strategy.execute_write
        execute_read_batch = strategy.execute_read_batch
        execute_request_batch = strategy.execute_request_batch
        fault_events = self._fault_events
        next_fault_time = (
            fault_events[self._next_fault].timestamp
            if self._next_fault < len(fault_events)
            else math.inf
        )
        next_tick = clock.pending_tick()
        store = self.persistent_store

        executed = 0
        reads = 0
        writes = 0
        first_time = 0.0
        last_time = 0.0
        for chunk in stream.chunks():
            times = chunk.timestamps
            n = len(times)
            if n == 0:
                continue
            if executed == 0:
                first_time = times[0]
            kinds = chunk.kinds.tobytes()
            users = chunk.users
            aux = chunk.aux
            index = 0
            while index < n:
                timestamp = times[index]
                if timestamp >= next_fault_time:
                    self._apply_due_faults(clock, timestamp)
                    next_fault_time = (
                        fault_events[self._next_fault].timestamp
                        if self._next_fault < len(fault_events)
                        else math.inf
                    )
                    next_tick = clock.pending_tick()
                    store = self.persistent_store
                if timestamp >= next_tick:
                    self._advance_ticks(clock, timestamp)
                    next_tick = clock.pending_tick()
                    store = self.persistent_store
                kind = kinds[index]
                post_hooks = self._post_request_hooks
                if post_hooks:
                    # A post-request hook appeared mid-run (registered by a
                    # pre-tick hook): from here on every event is replayed
                    # with per-event semantics so the hook sees the same
                    # request objects the per-event loop would deliver.
                    user = users[index]
                    other = aux[index]
                    if kind == KIND_READ:
                        execute_read(user, timestamp)
                        reads += 1
                    elif kind == KIND_WRITE:
                        execute_write(user, timestamp)
                        writes += 1
                        if store is not None:
                            store.process_write(user, timestamp)
                    elif kind == KIND_EDGE_ADD:
                        self._edge_added(timestamp, user, other)
                    elif kind == KIND_EDGE_REMOVE:
                        self._edge_removed(timestamp, user, other)
                    else:  # pragma: no cover - defensive
                        raise SimulationError(f"unknown event kind {kind}")
                    request = row_to_request(kind, timestamp, user, other)
                    for hook in post_hooks:
                        hook(request)
                    store = self.persistent_store
                    index += 1
                    continue
                if kind == KIND_READ or kind == KIND_WRITE:
                    boundary = (
                        next_fault_time if next_fault_time < next_tick else next_tick
                    )
                    end = (
                        bisect_left(times, boundary, index + 1, n)
                        if times[n - 1] >= boundary
                        else n
                    )
                    if store is None:
                        end = request_run_end(kinds, index, end)
                        if end - index == 1:
                            if kind == KIND_READ:
                                execute_read(users[index], timestamp)
                                reads += 1
                            else:
                                execute_write(users[index], timestamp)
                                writes += 1
                        else:
                            execute_request_batch(
                                kinds[index:end], users[index:end], times[index:end]
                            )
                            span = kinds.count(KIND_READ, index, end)
                            reads += span
                            writes += end - index - span
                    else:
                        end = kind_run_end(kinds, index, end)
                        if kind == KIND_READ:
                            if end - index == 1:
                                execute_read(users[index], timestamp)
                            else:
                                execute_read_batch(
                                    users[index:end], times[index:end]
                                )
                            reads += end - index
                        else:
                            # Durability path: mirror every write into the
                            # WAL-backed store in event order.
                            process_write = store.process_write
                            for position in range(index, end):
                                now = times[position]
                                execute_write(users[position], now)
                                process_write(users[position], now)
                            writes += end - index
                    index = end
                elif kind == KIND_EDGE_ADD:
                    self._edge_added(timestamp, users[index], aux[index])
                    index += 1
                elif kind == KIND_EDGE_REMOVE:
                    self._edge_removed(timestamp, users[index], aux[index])
                    index += 1
                else:  # pragma: no cover - defensive
                    raise SimulationError(f"unknown event kind {kind}")
            executed += n
            last_time = times[n - 1]
            if self._chunk_callback is not None:
                self._chunk_callback(executed, last_time)
        self._reads_executed += reads
        self._writes_executed += writes
        return executed, first_time, last_time

    def _replay_stream_sharded(
        self, stream: EventStream, clock: SimulationClock, context: "ShardContext"
    ) -> tuple[int, float, float]:
        """Partitioned replay: full system stream, owned requests only.

        The decision plane is *replicated*: every worker applies every edge
        mutation, fault burst and maintenance tick, so placement state
        evolves identically in all workers (the coordinator audits this with
        placement digests).  The measurement plane is *partitioned*: each
        read/write run is filtered down to the events owned by this shard —
        a 256-byte ``translate`` turns the per-event owner bytes into a
        selector, and ``itertools.compress`` gathers the owned columns at C
        speed — and dispatched through the same kernels as the batched loop,
        one call per gathered run.  Runs fully owned by this shard take the
        batched loop's exact dispatch; runs with no owned events are
        skipped.

        Exactness rests on the strategy being ``shard_requests_pure`` (the
        coordinator checks) and on a **closed user universe**: an event
        touching a user outside the initial graph could trigger lazy
        placement, which partitioned request streams would replay in a
        different order.  The guard is per chunk and C-speed — unknown
        owners surface as the :data:`UNOWNED` sentinel in the owner bytes,
        edge endpoints are checked with ``bytes.find`` loops over the rare
        edge kinds — and raises :class:`ShardFallbackError` *before* any
        event of the offending chunk executes, so the coordinator can
        restart in replicated mode from unchanged inputs.
        """
        strategy = self.strategy
        execute_read = strategy.execute_read
        execute_write = strategy.execute_write
        execute_read_batch = strategy.execute_read_batch
        execute_request_batch = strategy.execute_request_batch
        accountant = self.accountant
        fault_events = self._fault_events
        next_fault_time = (
            fault_events[self._next_fault].timestamp
            if self._next_fault < len(fault_events)
            else math.inf
        )
        next_tick = clock.pending_tick()
        store = self.persistent_store

        shard_id = context.shard_id
        owner_map = context.owner_map
        owner_map_get = owner_map.__getitem__
        # owner byte -> selector byte (1 = owned by this shard).
        selector_table = bytes(
            1 if value == shard_id else 0 for value in range(256)
        )
        heartbeat = self._chunk_callback

        executed = 0
        reads = 0
        writes = 0
        first_time = 0.0
        last_time = 0.0
        for chunk in stream.chunks():
            times = chunk.timestamps
            n = len(times)
            if n == 0:
                continue
            if executed == 0:
                first_time = times[0]
            kinds = chunk.kinds.tobytes()
            users = chunk.users
            aux = chunk.aux
            # Closed-universe guard (nothing of this chunk has executed yet).
            try:
                owners = bytes(map(owner_map_get, users))
            except IndexError:
                raise ShardFallbackError(
                    "event references a user id beyond the initial graph"
                ) from None
            if owners.find(UNOWNED) != -1:
                raise ShardFallbackError(
                    "event references a user outside the initial graph"
                )
            for edge_kind in (KIND_EDGE_ADD, KIND_EDGE_REMOVE):
                position = kinds.find(edge_kind)
                while position != -1:
                    endpoint = aux[position]
                    if (
                        not 0 <= endpoint < len(owner_map)
                        or owner_map[endpoint] == UNOWNED
                    ):
                        raise ShardFallbackError(
                            "edge event endpoint outside the initial graph"
                        )
                    position = kinds.find(edge_kind, position + 1)
            selector = owners.translate(selector_table)

            index = 0
            while index < n:
                timestamp = times[index]
                if timestamp >= next_fault_time:
                    self._apply_due_faults(clock, timestamp)
                    next_fault_time = (
                        fault_events[self._next_fault].timestamp
                        if self._next_fault < len(fault_events)
                        else math.inf
                    )
                    next_tick = clock.pending_tick()
                    store = self.persistent_store
                if timestamp >= next_tick:
                    self._advance_ticks(clock, timestamp)
                    next_tick = clock.pending_tick()
                    store = self.persistent_store
                kind = kinds[index]
                if kind == KIND_READ or kind == KIND_WRITE:
                    boundary = (
                        next_fault_time if next_fault_time < next_tick else next_tick
                    )
                    end = (
                        bisect_left(times, boundary, index + 1, n)
                        if times[n - 1] >= boundary
                        else n
                    )
                    if store is None:
                        end = request_run_end(kinds, index, end)
                        owned = selector.count(1, index, end)
                        if owned == end - index:
                            # Fully-owned run: the batched loop's dispatch.
                            if owned == 1:
                                if kind == KIND_READ:
                                    execute_read(users[index], timestamp)
                                    reads += 1
                                else:
                                    execute_write(users[index], timestamp)
                                    writes += 1
                            else:
                                execute_request_batch(
                                    kinds[index:end], users[index:end], times[index:end]
                                )
                                span = kinds.count(KIND_READ, index, end)
                                reads += span
                                writes += owned - span
                        elif owned:
                            run_selector = selector[index:end]
                            mine_kinds = bytes(
                                compress(kinds[index:end], run_selector)
                            )
                            if owned == 1:
                                position = index + run_selector.find(1)
                                if mine_kinds[0] == KIND_READ:
                                    execute_read(users[position], times[position])
                                    reads += 1
                                else:
                                    execute_write(users[position], times[position])
                                    writes += 1
                            else:
                                mine_users = list(
                                    compress(users[index:end], run_selector)
                                )
                                mine_times = list(
                                    compress(times[index:end], run_selector)
                                )
                                execute_request_batch(
                                    mine_kinds, mine_users, mine_times
                                )
                                span = mine_kinds.count(KIND_READ)
                                reads += span
                                writes += owned - span
                    else:
                        end = kind_run_end(kinds, index, end)
                        owned = selector.count(1, index, end)
                        if kind == KIND_READ:
                            if owned == end - index:
                                if owned == 1:
                                    execute_read(users[index], timestamp)
                                else:
                                    execute_read_batch(
                                        users[index:end], times[index:end]
                                    )
                            elif owned:
                                run_selector = selector[index:end]
                                if owned == 1:
                                    position = index + run_selector.find(1)
                                    execute_read(users[position], times[position])
                                else:
                                    execute_read_batch(
                                        list(compress(users[index:end], run_selector)),
                                        list(compress(times[index:end], run_selector)),
                                    )
                            reads += owned
                        else:
                            # Durability path: mirror owned writes into the
                            # WAL-backed store in event order.  Non-owned
                            # writes are skipped entirely — the store only
                            # backs crash recovery, whose fetch of a
                            # never-written view is side-effect-free.
                            process_write = store.process_write
                            for position in compress(
                                range(index, end), selector[index:end]
                            ):
                                now = times[position]
                                execute_write(users[position], now)
                                process_write(users[position], now)
                            writes += owned
                    index = end
                elif kind == KIND_EDGE_ADD or kind == KIND_EDGE_REMOVE:
                    # Decision-plane event: every worker applies it (the
                    # graph and placement must stay replicated) but only the
                    # follower's owner shard accounts for any traffic.
                    mine = owners[index] == shard_id
                    if not mine:
                        accountant.push_mute()
                    try:
                        if kind == KIND_EDGE_ADD:
                            self._edge_added(timestamp, users[index], aux[index])
                        else:
                            self._edge_removed(timestamp, users[index], aux[index])
                    finally:
                        if not mine:
                            accountant.pop_mute()
                    index += 1
                else:  # pragma: no cover - defensive
                    raise SimulationError(f"unknown event kind {kind}")
            executed += n
            last_time = times[n - 1]
            if heartbeat is not None:
                heartbeat(executed, last_time)
        self._reads_executed += reads
        self._writes_executed += writes
        return executed, first_time, last_time

    def _replay_stream_events(
        self, stream: EventStream, clock: SimulationClock
    ) -> tuple[int, float, float]:
        """The per-event columnar loop (hooks, tracking, reference path).

        Maintenance ticks, due faults and tracked-view sampling are guarded
        by inlined timestamp comparisons — the guarded calls are exact
        no-ops when the guard is false, so the interleaving matches the
        object loop event for event.
        """
        strategy = self.strategy
        execute_read = strategy.execute_read
        execute_write = strategy.execute_write
        post_hooks = self._post_request_hooks
        tracking = bool(self._tracked_views)
        fault_events = self._fault_events
        next_fault_time = (
            fault_events[self._next_fault].timestamp
            if self._next_fault < len(fault_events)
            else math.inf
        )
        next_tick = clock.pending_tick()
        next_sample = self._next_sample if tracking else math.inf
        # The store reference can change mid-run only when a crash fault
        # creates one, so the local is refreshed after each fault burst.
        store = self.persistent_store

        executed = 0
        reads = 0
        writes = 0
        first_time = 0.0
        last_time = 0.0
        for chunk in stream.chunks():
            times = chunk.timestamps
            n = len(times)
            if n == 0:
                continue
            if executed == 0:
                first_time = times[0]
            for kind, timestamp, user, other in zip(
                chunk.kinds, times, chunk.users, chunk.aux
            ):
                if timestamp >= next_fault_time:
                    self._apply_due_faults(clock, timestamp)
                    next_fault_time = (
                        fault_events[self._next_fault].timestamp
                        if self._next_fault < len(fault_events)
                        else math.inf
                    )
                    next_tick = clock.pending_tick()
                    store = self.persistent_store
                if timestamp >= next_tick:
                    self._advance_ticks(clock, timestamp)
                    next_tick = clock.pending_tick()
                    store = self.persistent_store
                if timestamp >= next_sample:
                    self._sample_tracked(timestamp)
                    next_sample = self._next_sample

                if kind == KIND_READ:
                    if tracking:
                        self._count_tracked_read(user)
                    execute_read(user, timestamp)
                    reads += 1
                elif kind == KIND_WRITE:
                    execute_write(user, timestamp)
                    writes += 1
                    if store is not None:
                        # Durability path: the write reaches the WAL-backed
                        # store before (in simulated time) the cache serves it.
                        store.process_write(user, timestamp)
                elif kind == KIND_EDGE_ADD:
                    self._edge_added(timestamp, user, other)
                elif kind == KIND_EDGE_REMOVE:
                    self._edge_removed(timestamp, user, other)
                else:  # pragma: no cover - defensive
                    raise SimulationError(f"unknown event kind {kind}")
                if post_hooks:
                    request = row_to_request(kind, timestamp, user, other)
                    for hook in post_hooks:
                        hook(request)
                    store = self.persistent_store
            executed += n
            last_time = times[n - 1]
        self._reads_executed += reads
        self._writes_executed += writes
        return executed, first_time, last_time

    def _finish(
        self,
        clock: SimulationClock,
        executed: int,
        first_time: float,
        last_time: float,
    ) -> SimulationResult:
        """Apply trailing faults, fire the final tick, assemble the result."""
        # Faults scheduled past the end of the workload still happen (e.g. a
        # recovery that closes a crash window after the last request).
        final_time = last_time
        if self._next_fault < len(self._fault_events):
            last_fault = self._fault_events[-1].timestamp
            self._apply_due_faults(clock, last_fault)
            final_time = max(final_time, last_fault)

        # Final maintenance tick and sample so end-of-run state is captured.
        # System traffic, like every tick's, belongs to shard 0 alone.
        mute = self._shard_system_mute
        if mute:
            self.accountant.push_mute()
        try:
            self._fire_pre_tick(final_time)
            self.strategy.on_tick(final_time)
        finally:
            if mute:
                self.accountant.pop_mute()
        self._sample_tracked(final_time, force=True)

        app_series, sys_series = self.accountant.top_switch_series()
        replication_factor = self._replication_factor()
        return SimulationResult(
            strategy_name=self.strategy.name,
            extra_memory_pct=self.config.extra_memory_pct,
            duration=last_time - first_time if executed else 0.0,
            requests_executed=executed,
            reads_executed=self._reads_executed,
            writes_executed=self._writes_executed,
            snapshot=self.accountant.snapshot(),
            top_series_application=app_series,
            top_series_system=sys_series,
            bucket_width=self.config.bucket_width,
            replication_factor=replication_factor,
            memory_in_use=self.strategy.memory_in_use(),
            tracked_views=dict(self._tracked_views),
            fault_records=list(self.fault_records),
            unavailable_views=self._count_unavailable_views(),
        )

    # ----------------------------------------------------- request handlers
    def _apply_read(self, request: ReadRequest) -> None:
        if self._tracked_followers:
            self._count_tracked_read(request.user)
        self.strategy.execute_read(request.user, request.timestamp)
        self._reads_executed += 1

    def _apply_write(self, request: WriteRequest) -> None:
        self.strategy.execute_write(request.user, request.timestamp)
        self._writes_executed += 1
        if self.persistent_store is not None:
            # Durability path: the write reaches the WAL-backed store
            # before (in simulated time) the cache serves it.
            self.persistent_store.process_write(request.user, request.timestamp)

    def _apply_edge_added(self, request: EdgeAdded) -> None:
        self._edge_added(request.timestamp, request.follower, request.followee)

    def _apply_edge_removed(self, request: EdgeRemoved) -> None:
        self._edge_removed(request.timestamp, request.follower, request.followee)

    def _edge_added(self, timestamp: float, follower: int, followee: int) -> None:
        self.graph.add_edge(follower, followee)
        self.strategy.on_edge_added(follower, followee, timestamp)
        followers = self._tracked_followers.get(followee)
        if followers is not None:
            followers.add(follower)

    def _edge_removed(self, timestamp: float, follower: int, followee: int) -> None:
        self.graph.remove_edge(follower, followee)
        self.strategy.on_edge_removed(follower, followee, timestamp)
        followers = self._tracked_followers.get(followee)
        if followers is not None:
            followers.discard(follower)

    # -------------------------------------------------------------- scenario
    def _scenario_context(self):
        from ..scenarios.base import ScenarioContext

        return ScenarioContext(
            topology=self.topology, graph=self.graph, seed=self.config.seed
        )

    def _stage_scenario_log(self, log: RequestLog) -> RequestLog:
        """Apply the scenario's log transform and stage its fault events."""
        if self.scenario is None:
            return log
        context = self._scenario_context()
        log = self.scenario.transform_log(log, context)
        self._stage_fault_events(context)
        return log

    def _stage_scenario_stream(self, stream: EventStream) -> EventStream:
        """Apply the scenario's chunk-level transform and stage its faults."""
        if self.scenario is None:
            return stream
        context = self._scenario_context()
        stream = self.scenario.transform_stream(stream, context)
        self._stage_fault_events(context)
        return stream

    def _stage_fault_events(self, context) -> None:
        events = sorted(
            self.scenario.fault_events(context), key=lambda event: event.timestamp
        )
        for event in events:
            if event.timestamp < 0:
                raise SimulationError("fault events cannot happen before time 0")
        self._fault_events = events
        self._next_fault = 0
        # Abrupt crashes recover sole replicas from the WAL-backed store, so
        # writes must be mirrored from t=0.  Pure load scenarios and
        # graceful-only churn never touch the store — don't pay for one.
        from ..scenarios.events import ServerCrash

        if self.persistent_store is None and any(
            isinstance(event, ServerCrash) for event in events
        ):
            self.persistent_store = PersistentStore()

    def _apply_due_faults(self, clock: SimulationClock, until: float) -> None:
        """Apply every staged fault event with ``timestamp <= until``.

        Maintenance ticks due before a fault fire first, so the ordering of
        ticks, faults and requests follows simulated time exactly.

        On non-primary shards of a partitioned run the whole burst executes
        muted: the fault still reshapes placement (replicated decision
        plane) but its traffic — replica copies, recovery fetches — is
        accounted by shard 0 alone.
        """
        mute = self._shard_system_mute
        if mute:
            self.accountant.push_mute()
        try:
            applied = False
            while (
                self._next_fault < len(self._fault_events)
                and self._fault_events[self._next_fault].timestamp <= until
            ):
                event = self._fault_events[self._next_fault]
                self._next_fault += 1
                self._advance_ticks(clock, event.timestamp)
                event.apply(self)
                applied = True
        finally:
            if mute:
                self.accountant.pop_mute()
        if applied and self._check_tables:
            self._audit_placement_tables()

    def _advance_ticks(self, clock: SimulationClock, until: float) -> None:
        mute = self._shard_system_mute
        if mute:
            self.accountant.push_mute()
        try:
            ticked = False
            for tick_time in clock.advance_to(until):
                self._fire_pre_tick(tick_time)
                self.strategy.on_tick(tick_time)
                ticked = True
        finally:
            if mute:
                self.accountant.pop_mute()
        if ticked and self._check_tables:
            self._audit_placement_tables()

    def _audit_placement_tables(self) -> None:
        """Integrity-check the strategy's placement tables (opt-in).

        Enabled by the ``REPRO_CHECK_TABLES`` environment flag; runs the
        :meth:`~repro.store.tables.ReplicaTable.check_integrity` auditor
        after maintenance ticks and fault bursts — the two moments bulk
        state transitions (counter sweeps, evictions, evacuations) could
        corrupt the chain indexes.  Strategies without a ``tables``
        attribute (custom or legacy object-path strategies) are skipped.
        """
        tables = getattr(self.strategy, "tables", None)
        if tables is not None and hasattr(tables, "check_integrity"):
            tables.check_integrity()

    def _fire_pre_tick(self, tick_time: float) -> None:
        for hook in self._pre_tick_hooks:
            hook(tick_time)

    def _count_unavailable_views(self) -> int:
        """Users with no replica anywhere (must be 0 after full recovery).

        Strategies backed by the placement tables answer per-user
        availability in O(1); the fallback materialises the full location
        map (custom strategies only).
        """
        has_any = getattr(self.strategy, "has_any_replica", None)
        if has_any is not None:
            return sum(1 for user in self.graph.users if not has_any(user))
        locations = self.strategy.replica_locations()
        return sum(1 for user in self.graph.users if not locations.get(user))

    # ------------------------------------------------------------- tracking
    def _count_tracked_read(self, reader: int) -> None:
        """Count reads that touch tracked views (reader follows the target).

        Uses the incrementally maintained follower sets, so the per-read
        cost is one membership check per tracked view instead of a scan of
        the reader's full following list.
        """
        for user, followers in self._tracked_followers.items():
            if reader in followers:
                self._tracked_reads[user] += 1

    def _sample_tracked(self, now: float, force: bool = False) -> None:
        if not self._tracked_views:
            return
        if not force and now < self._next_sample:
            return
        for user, timeline in self._tracked_views.items():
            count = self.strategy.replica_count(user)
            timeline.replica_counts.append((now, count))
            reads = self._tracked_reads.get(user, 0)
            per_replica = reads / count if count else 0.0
            timeline.reads_per_replica.append((now, per_replica))
            self._tracked_reads[user] = 0
        while self._next_sample <= now:
            self._next_sample += self.tracking_period

    def _replication_factor(self) -> float:
        locations = self.strategy.replica_locations()
        if not locations:
            return 0.0
        return sum(len(devices) for devices in locations.values()) / len(locations)


__all__ = ["ClusterSimulator", "UNOWNED"]
