"""Configuration objects for the DynaSoRe reproduction.

Three families of configuration live here:

* :class:`ClusterSpec` / :class:`FlatClusterSpec` describe the data-center
  topology (paper section 4.3: 1 top switch, 5 intermediate switches, 5 racks
  per intermediate switch, 10 machines per rack, 1 broker per rack).
* :class:`DynaSoReConfig` collects the tunables of the placement algorithm
  (counter slots and period, admission fill factor, eviction threshold).
* :class:`SimulationConfig` and :class:`ExperimentProfile` control how the
  trace-driven simulator runs (message sizes, tick period, extra memory,
  time-bucket width) and at which scale experiments execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .constants import (
    APPLICATION_MESSAGE_SIZE,
    DAY,
    DEFAULT_ADMISSION_FILL,
    DEFAULT_COUNTER_PERIOD,
    DEFAULT_COUNTER_SLOTS,
    DEFAULT_EVICTION_THRESHOLD,
    HOUR,
    MINUTE,
    PROTOCOL_MESSAGE_SIZE,
)
from .exceptions import ConfigurationError


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of a tree-structured data-center cluster.

    The default values reproduce the virtual data center of the paper's
    evaluation: 5 intermediate switches, 5 racks each, 10 machines per rack of
    which one is a broker, for a total of 225 storage servers and 25 brokers.
    """

    intermediate_switches: int = 5
    racks_per_intermediate: int = 5
    machines_per_rack: int = 10
    brokers_per_rack: int = 1

    def __post_init__(self) -> None:
        if self.intermediate_switches < 1:
            raise ConfigurationError("a cluster needs at least one intermediate switch")
        if self.racks_per_intermediate < 1:
            raise ConfigurationError("each intermediate switch needs at least one rack")
        if self.machines_per_rack < 2:
            raise ConfigurationError("each rack needs at least one server and one broker")
        if not 1 <= self.brokers_per_rack < self.machines_per_rack:
            raise ConfigurationError(
                "brokers_per_rack must leave at least one storage server per rack"
            )

    @property
    def servers_per_rack(self) -> int:
        """Number of storage servers in each rack."""
        return self.machines_per_rack - self.brokers_per_rack

    @property
    def total_racks(self) -> int:
        """Total number of racks in the cluster."""
        return self.intermediate_switches * self.racks_per_intermediate

    @property
    def total_servers(self) -> int:
        """Total number of storage servers in the cluster."""
        return self.total_racks * self.servers_per_rack

    @property
    def total_brokers(self) -> int:
        """Total number of broker machines in the cluster."""
        return self.total_racks * self.brokers_per_rack

    def scaled(self, factor: float) -> "ClusterSpec":
        """Return a spec whose rack count is scaled by ``factor`` (≥ 1 rack)."""
        racks = max(1, round(self.racks_per_intermediate * factor))
        return replace(self, racks_per_intermediate=racks)


@dataclass(frozen=True)
class FlatClusterSpec:
    """Shape of the flat cluster used in paper section 4.5.

    All machines hang off a single switch and every machine acts as both a
    cache server and a broker (250 machines in the paper).
    """

    machines: int = 250

    def __post_init__(self) -> None:
        if self.machines < 2:
            raise ConfigurationError("a flat cluster needs at least two machines")


@dataclass(frozen=True)
class DynaSoReConfig:
    """Tunables of the DynaSoRe placement algorithm.

    The defaults follow the paper: 24 one-hour rotating counter slots, the
    admission threshold activates when 90% of a server's memory holds views
    above the threshold, and proactive eviction starts above 95% utilisation.
    """

    counter_slots: int = DEFAULT_COUNTER_SLOTS
    counter_period: float = DEFAULT_COUNTER_PERIOD
    admission_fill: float = DEFAULT_ADMISSION_FILL
    eviction_threshold: float = DEFAULT_EVICTION_THRESHOLD
    #: Minimum number of replicas kept for every view.  The paper defaults to
    #: one (durability comes from the persistent store) but section 3.3 notes
    #: DynaSoRe can be configured to keep several replicas for fast recovery.
    min_replicas: int = 1
    #: Evaluate Algorithm 2 (replica creation) at most once every this many
    #: reads of a given replica.  1 reproduces the paper exactly ("upon
    #: receiving a request"); larger values trade reactivity for speed.
    replication_check_interval: int = 1
    #: Whether read/write proxies migrate towards the data they access
    #: (paper section 3.2, "Proxy placement").
    enable_proxy_migration: bool = True
    #: Whether Algorithm 3 (migration of a replica to a better location) runs
    #: during the periodic maintenance tick.
    enable_view_migration: bool = True

    def __post_init__(self) -> None:
        if self.counter_slots < 1:
            raise ConfigurationError("counter_slots must be positive")
        if self.counter_period <= 0:
            raise ConfigurationError("counter_period must be positive")
        if not 0.0 < self.admission_fill <= 1.0:
            raise ConfigurationError("admission_fill must be in (0, 1]")
        if not 0.0 < self.eviction_threshold <= 1.0:
            raise ConfigurationError("eviction_threshold must be in (0, 1]")
        if self.min_replicas < 1:
            raise ConfigurationError("min_replicas must be at least 1")
        if self.replication_check_interval < 1:
            raise ConfigurationError("replication_check_interval must be at least 1")


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of a trace-driven simulation run."""

    #: Extra memory, in percent of the space needed to store every view once
    #: (paper section 2.3).  0 means capacity exactly matches |V|.
    extra_memory_pct: float = 30.0
    #: Application message size relative to protocol messages.
    application_message_size: int = APPLICATION_MESSAGE_SIZE
    protocol_message_size: int = PROTOCOL_MESSAGE_SIZE
    #: Period of the maintenance tick (counter rotation, threshold update,
    #: eviction sweep).  The paper shifts counters every hour.
    tick_period: float = HOUR
    #: Width of the time buckets used for reported traffic series.
    bucket_width: float = HOUR
    #: Traffic before this simulated time is not recorded.  The paper reports
    #: the steady-state traffic "after convergence" for Figure 3 and the
    #: tables, so those experiments treat the first part of the trace as a
    #: warm-up phase.
    measure_from: float = 0.0
    #: Seed for every random decision taken during the simulation.
    seed: int = 7
    #: Replay event streams through the chunk-native batched dispatch path
    #: (homogeneous read/write runs handed to the strategy's batch kernels).
    #: Batched and per-event replay produce byte-identical results; the
    #: simulator automatically falls back to the per-event loop whenever
    #: per-event observation is required (post-request hooks, tracked
    #: views).  ``False`` forces the per-event loop — the reference path of
    #: the parity tests and the batching benchmark.
    batch_replay: bool = True
    #: Run the maintenance tick through the strategy's batched column sweep
    #: (fused counter rotation + utility refresh with dirty-set tracking;
    #: see ``DynaSoRe.on_tick``).  Batched and per-slot ticks produce
    #: byte-identical results; ``False`` forces the per-slot reference path
    #: — the baseline of the tick parity tests and the tick benchmark.
    batch_tick: bool = True

    def __post_init__(self) -> None:
        if self.extra_memory_pct < 0:
            raise ConfigurationError("extra_memory_pct cannot be negative")
        if self.application_message_size <= 0 or self.protocol_message_size <= 0:
            raise ConfigurationError("message sizes must be positive")
        if self.tick_period <= 0 or self.bucket_width <= 0:
            raise ConfigurationError("tick_period and bucket_width must be positive")
        if self.measure_from < 0:
            raise ConfigurationError("measure_from cannot be negative")


@dataclass(frozen=True)
class ExperimentProfile:
    """Scale profile shared by the experiment harness and the benchmarks.

    The paper's experiments run over millions of users on a 250-machine Java
    simulator; a pure-Python reproduction needs adjustable scale.  A profile
    bundles the cluster shape, graph sizes and trace lengths so every figure
    and table can be regenerated at ``ci``, ``laptop`` or ``paper`` scale.
    """

    name: str
    cluster: ClusterSpec
    flat_machines: int
    users: dict[str, int]
    synthetic_days: float
    trace_days: float
    memory_sweep: tuple[float, ...]
    flash_repetitions: int
    seed: int = 7
    #: Default worker-process count of the experiment runtime (overridden by
    #: the CLI's ``--jobs``); 1 executes in-process.
    jobs: int = 1
    #: Directory of the runtime's on-disk result cache (used by the CLI;
    #: ``--no-cache`` bypasses it).
    cache_dir: str = ".repro-cache"

    @staticmethod
    def ci() -> "ExperimentProfile":
        """Tiny profile used by the test-suite and pytest-benchmark targets."""
        return ExperimentProfile(
            name="ci",
            cluster=ClusterSpec(
                intermediate_switches=3,
                racks_per_intermediate=2,
                machines_per_rack=4,
                brokers_per_rack=1,
            ),
            flat_machines=18,
            users={"twitter": 600, "facebook": 800, "livejournal": 1000},
            synthetic_days=1.0,
            trace_days=2.0,
            memory_sweep=(0.0, 30.0, 100.0),
            flash_repetitions=3,
        )

    @staticmethod
    def laptop() -> "ExperimentProfile":
        """Default profile for the examples: minutes, not hours."""
        return ExperimentProfile(
            name="laptop",
            cluster=ClusterSpec(
                intermediate_switches=5,
                racks_per_intermediate=3,
                machines_per_rack=6,
                brokers_per_rack=1,
            ),
            flat_machines=75,
            users={"twitter": 4000, "facebook": 6000, "livejournal": 8000},
            synthetic_days=2.0,
            trace_days=4.0,
            memory_sweep=(0.0, 30.0, 50.0, 100.0, 150.0, 200.0),
            flash_repetitions=10,
        )

    @staticmethod
    def paper() -> "ExperimentProfile":
        """The paper's cluster shape and memory sweep (slow in pure Python)."""
        return ExperimentProfile(
            name="paper",
            cluster=ClusterSpec(),
            flat_machines=250,
            users={"twitter": 50000, "facebook": 80000, "livejournal": 100000},
            synthetic_days=3.0,
            trace_days=14.0,
            memory_sweep=(0.0, 30.0, 50.0, 100.0, 150.0, 200.0),
            flash_repetitions=100,
        )

    @staticmethod
    def by_name(name: str) -> "ExperimentProfile":
        """Look up a profile by name (``ci``, ``laptop`` or ``paper``)."""
        factories = {
            "ci": ExperimentProfile.ci,
            "laptop": ExperimentProfile.laptop,
            "paper": ExperimentProfile.paper,
        }
        if name not in factories:
            raise ConfigurationError(
                f"unknown profile {name!r}; expected one of {sorted(factories)}"
            )
        return factories[name]()


__all__ = [
    "ClusterSpec",
    "FlatClusterSpec",
    "DynaSoReConfig",
    "SimulationConfig",
    "ExperimentProfile",
]
