"""Hierarchical METIS baseline (paper section 4.1, "Hierarchical METIS").

The graph is first partitioned across intermediate switches, then each part
is re-partitioned across the racks of its switch, and finally across the
servers of each rack.  Friends that cannot share a server still tend to share
a rack or at least an intermediate switch, so their traffic avoids the top
switch — the paper reports a two-fold improvement over flat METIS.

On a flat topology (no hierarchy) this baseline degenerates to flat METIS,
which is also what the paper does implicitly by omitting hMETIS from the
flat-topology figure.
"""

from __future__ import annotations

from ..partitioning.hierarchical import hierarchical_partition
from ..partitioning.kway import partition_kway
from ..socialgraph.graph import SocialGraph
from ..topology.base import ClusterTopology
from ..topology.tree import TreeTopology
from .base import StaticPlacementStrategy


def hmetis_assignment(graph: SocialGraph, topology: ClusterTopology, seed: int = 7) -> dict[int, int]:
    """Hierarchy-aware partitioning assignment (one part per server)."""
    adjacency = graph.undirected_adjacency()
    if isinstance(topology, TreeTopology):
        result = hierarchical_partition(adjacency, topology.spec, seed=seed)
        return result.server_assignment
    flat = partition_kway(adjacency, len(topology.servers), seed=seed)
    return flat.assignment


class HierarchicalMetisPlacement(StaticPlacementStrategy):
    """Static placement from recursive, topology-aware graph partitioning."""

    name = "hmetis"

    def __init__(self, seed: int = 7) -> None:
        super().__init__()
        self.seed = seed

    def compute_assignment(self) -> dict[int, int]:
        assert self.graph is not None and self.topology is not None
        return hmetis_assignment(self.graph, self.topology, seed=self.seed)


__all__ = ["HierarchicalMetisPlacement", "hmetis_assignment"]
