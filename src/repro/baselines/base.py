"""Placement-strategy interface and the shared static execution engine.

Every view-management protocol evaluated in the paper — Random, METIS,
hierarchical METIS, SPAR and DynaSoRe itself — is a *placement strategy*: it
decides where view replicas live, which broker executes each request, and it
is driven by the same trace-driven simulator.  This module defines the
interface and a base class implementing the common execution logic of the
static baselines (fixed single-replica placement, proxies on the broker of
the rack hosting the view).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from ..exceptions import SimulationError
from ..socialgraph.graph import SocialGraph
from ..store.memory import MemoryBudget
from ..topology.base import ClusterTopology
from ..traffic.accounting import TrafficAccountant
from ..traffic.messages import MessageKind


class PlacementStrategy(ABC):
    """A view-placement protocol driven by the cluster simulator."""

    #: Human-readable name used in experiment reports.
    name: str = "strategy"

    def __init__(self) -> None:
        self.topology: ClusterTopology | None = None
        self.graph: SocialGraph | None = None
        self.accountant: TrafficAccountant | None = None
        self.budget: MemoryBudget | None = None
        self.rng = random.Random(0)

    # ------------------------------------------------------------------ setup
    def bind(
        self,
        topology: ClusterTopology,
        graph: SocialGraph,
        accountant: TrafficAccountant,
        budget: MemoryBudget,
        seed: int = 7,
    ) -> None:
        """Attach the strategy to a cluster, graph, accountant and budget."""
        self.topology = topology
        self.graph = graph
        self.accountant = accountant
        self.budget = budget
        self.rng = random.Random(seed)

    def require_bound(self) -> None:
        """Raise when the strategy has not been bound to a cluster yet."""
        if self.topology is None or self.graph is None or self.accountant is None:
            raise SimulationError(f"strategy {self.name!r} is not bound to a cluster")

    @abstractmethod
    def build_initial_placement(self) -> None:
        """Compute the initial assignment of views (and replicas) to servers."""

    # -------------------------------------------------------------- execution
    @abstractmethod
    def execute_read(
        self, user: int, now: float, targets: tuple[int, ...] | None = None
    ) -> None:
        """Execute a read request: fetch the views of everyone ``user`` follows.

        ``targets`` overrides the target list (the public key-value API passes
        an explicit list, exactly like the paper's ``Read(u, L)``); when it is
        ``None`` the strategy reads the views of every user ``user`` follows
        in the bound social graph.
        """

    @abstractmethod
    def execute_write(self, user: int, now: float) -> None:
        """Execute a write request: update every replica of ``user``'s view."""

    def on_tick(self, now: float) -> None:
        """Periodic maintenance hook (counter rotation, thresholds, eviction)."""

    def on_edge_added(self, follower: int, followee: int, now: float) -> None:
        """The social graph gained an edge (already applied to ``self.graph``)."""

    def on_edge_removed(self, follower: int, followee: int, now: float) -> None:
        """The social graph lost an edge (already applied to ``self.graph``)."""

    # ------------------------------------------------------------ introspection
    @abstractmethod
    def replica_locations(self) -> dict[int, set[int]]:
        """Map of every user to the *leaf device indices* storing her view."""

    def replica_count(self, user: int) -> int:
        """Number of replicas of one user's view."""
        return len(self.replica_locations().get(user, set()))

    def total_replicas(self) -> int:
        """Total number of replicas stored in the cluster."""
        return sum(len(servers) for servers in self.replica_locations().values())

    def memory_in_use(self) -> int:
        """Total view slots in use (equals :meth:`total_replicas`)."""
        return self.total_replicas()

    # --------------------------------------------------------------- helpers
    def server_device(self, position: int) -> int:
        """Leaf device index of the ``position``-th storage server."""
        assert self.topology is not None
        return self.topology.servers[position].index

    def closest_replica(self, broker: int, servers: set[int] | tuple[int, ...]) -> int:
        """Replica closest to ``broker`` (lowest common ancestor rule).

        Ties are broken with the server identifier, as in the paper's routing
        policy.
        """
        assert self.topology is not None
        if not servers:
            raise SimulationError("cannot route to a view with no replica")
        return min(servers, key=lambda s: (self.topology.distance(broker, s), s))


class StaticPlacementStrategy(PlacementStrategy):
    """Shared behaviour of the static baselines (Random, METIS, hMETIS).

    A static strategy stores exactly one replica per view, never changes the
    placement during the run, and deploys both proxies of a user on the
    broker associated with the server holding her view (paper section 4.1).
    """

    def __init__(self) -> None:
        super().__init__()
        #: user -> storage-server position (0 .. num_servers - 1)
        self._assignment: dict[int, int] = {}

    # ----------------------------------------------------------- assignment
    @abstractmethod
    def compute_assignment(self) -> dict[int, int]:
        """Return the user → server-position assignment for the bound graph."""

    def build_initial_placement(self) -> None:
        self.require_bound()
        self._assignment = dict(self.compute_assignment())
        missing = set(self.graph.users) - set(self._assignment)
        if missing:
            raise SimulationError(
                f"{self.name} assignment misses {len(missing)} users"
            )

    def assignment(self) -> dict[int, int]:
        """Copy of the user → server-position assignment."""
        return dict(self._assignment)

    def server_position_of(self, user: int) -> int:
        """Server position of a user's (single) replica, assigning lazily for
        users that joined after the initial placement."""
        position = self._assignment.get(user)
        if position is None:
            position = self._least_loaded_position()
            self._assignment[user] = position
        return position

    def _least_loaded_position(self) -> int:
        assert self.topology is not None
        loads: dict[int, int] = {i: 0 for i in range(len(self.topology.servers))}
        for position in self._assignment.values():
            loads[position] = loads.get(position, 0) + 1
        return min(loads, key=lambda p: (loads[p], p))

    # -------------------------------------------------------------- proxies
    def proxy_broker(self, user: int) -> int:
        """Broker hosting both proxies of a user (rack of her view)."""
        assert self.topology is not None
        server = self.server_device(self.server_position_of(user))
        return self.topology.proxy_broker_for_server(server)

    # ------------------------------------------------------------ execution
    def execute_read(
        self, user: int, now: float, targets: tuple[int, ...] | None = None
    ) -> None:
        self.require_bound()
        assert self.graph is not None and self.accountant is not None
        if targets is None:
            if not self.graph.has_user(user):
                return
            targets = tuple(self.graph.following(user))
        broker = self.proxy_broker(user)
        for target in targets:
            server = self.server_device(self.server_position_of(target))
            self.accountant.record_roundtrip(
                broker, server, MessageKind.READ_REQUEST, MessageKind.READ_RESPONSE, now
            )

    def execute_write(self, user: int, now: float) -> None:
        self.require_bound()
        assert self.accountant is not None
        broker = self.proxy_broker(user)
        server = self.server_device(self.server_position_of(user))
        self.accountant.record_roundtrip(
            broker, server, MessageKind.WRITE_UPDATE, MessageKind.WRITE_ACK, now
        )

    # -------------------------------------------------------- introspection
    def replica_locations(self) -> dict[int, set[int]]:
        return {
            user: {self.server_device(position)}
            for user, position in self._assignment.items()
        }

    def replica_count(self, user: int) -> int:
        return 1 if user in self._assignment else 0


__all__ = ["PlacementStrategy", "StaticPlacementStrategy"]
