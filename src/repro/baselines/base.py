"""Placement-strategy interface and the shared static execution engine.

Every view-management protocol evaluated in the paper — Random, METIS,
hierarchical METIS, SPAR and DynaSoRe itself — is a *placement strategy*: it
decides where view replicas live, which broker executes each request, and it
is driven by the same trace-driven simulator.  This module defines the
interface and a base class implementing the common execution logic of the
static baselines (fixed single-replica placement, proxies on the broker of
the rack hosting the view).

Request execution is **batch-first**: the simulator segments event streams
into runs of requests (reads and writes, bounded by graph mutations, faults
and maintenance ticks) and hands whole runs to
:meth:`PlacementStrategy.execute_request_batch`; pure runs can also be
dispatched through :meth:`~PlacementStrategy.execute_read_batch` /
:meth:`~PlacementStrategy.execute_write_batch`.  The base class implements
all three as per-event loops over the scalar entry points, so every
strategy — including user subclasses and the frozen legacy twins — is
batch-dispatchable by construction; strategies with columnar state override
``execute_request_batch`` with a fused kernel that produces byte-identical
results (the static kernel below, the SPAR kernel, the DynaSoRe kernel).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Sequence

from ..exceptions import SimulationError
from ..persistence.recovery import RecoveryPlan
from ..socialgraph.graph import SocialGraph
from ..store.memory import MemoryBudget
from ..store.tables import pick_least_loaded
from ..topology.base import ClusterTopology
from ..traffic.accounting import TrafficAccountant
from ..traffic.messages import MessageKind
from ..workload.stream import KIND_READ, KIND_WRITE

#: One-byte kind columns the pure-run wrappers tile to the run length.
_READ_KINDS = bytes([KIND_READ])
_WRITE_KINDS = bytes([KIND_WRITE])


class PlacementStrategy(ABC):
    """A view-placement protocol driven by the cluster simulator."""

    #: Human-readable name used in experiment reports.
    name: str = "strategy"

    #: Whether :meth:`on_tick` may run through a batched column sweep where
    #: one exists (DynaSoRe's fused rotation/utility/threshold passes).
    #: Set from ``SimulationConfig.batch_tick`` by the simulator's
    #: ``prepare``; ``False`` forces the per-slot reference tick.  Both
    #: paths are byte-identical — strategies without a batched tick ignore
    #: the flag.
    batch_tick: bool = True

    #: Whether request execution is a *pure measurement* over placement
    #: state that only system events (edges, faults, ticks) mutate.  Pure
    #: strategies may have their request stream partitioned across shard
    #: workers: each worker replays every system event (keeping placement
    #: replicated and identical) but only its owned requests, and the merged
    #: traffic is byte-identical to the single-process run.  ``False`` (the
    #: safe default) means reads/writes feed back into placement decisions —
    #: DynaSoRe's per-replica statistics and Algorithms 2/3 — so the sharded
    #: runner degrades to replicated execution for exactness.
    shard_requests_pure: bool = False

    def __init__(self) -> None:
        self.topology: ClusterTopology | None = None
        self.graph: SocialGraph | None = None
        self.accountant: TrafficAccountant | None = None
        self.budget: MemoryBudget | None = None
        self.rng = random.Random(0)

    # ------------------------------------------------------------------ setup
    def bind(
        self,
        topology: ClusterTopology,
        graph: SocialGraph,
        accountant: TrafficAccountant,
        budget: MemoryBudget,
        seed: int = 7,
    ) -> None:
        """Attach the strategy to a cluster, graph, accountant and budget."""
        self.topology = topology
        self.graph = graph
        self.accountant = accountant
        self.budget = budget
        self.rng = random.Random(seed)

    def require_bound(self) -> None:
        """Raise when the strategy has not been bound to a cluster yet."""
        if self.topology is None or self.graph is None or self.accountant is None:
            raise SimulationError(f"strategy {self.name!r} is not bound to a cluster")

    @abstractmethod
    def build_initial_placement(self) -> None:
        """Compute the initial assignment of views (and replicas) to servers."""

    # -------------------------------------------------------------- execution
    @abstractmethod
    def execute_read(
        self, user: int, now: float, targets: tuple[int, ...] | None = None
    ) -> None:
        """Execute a read request: fetch the views of everyone ``user`` follows.

        ``targets`` overrides the target list (the public key-value API passes
        an explicit list, exactly like the paper's ``Read(u, L)``); when it is
        ``None`` the strategy reads the views of every user ``user`` follows
        in the bound social graph.
        """

    @abstractmethod
    def execute_write(self, user: int, now: float) -> None:
        """Execute a write request: update every replica of ``user``'s view."""

    def execute_request_batch(
        self,
        kinds: Sequence[int],
        users: Sequence[int],
        timestamps: Sequence[float],
    ) -> None:
        """Execute a time-ordered run of read/write requests.

        ``kinds`` holds one :data:`~repro.workload.stream.KIND_READ` /
        :data:`~repro.workload.stream.KIND_WRITE` code per event (the
        simulator passes a chunk's kind column as ``bytes``).  The default
        loops over the scalar entry points, so batch dispatch is
        semantically identical to per-event dispatch for every strategy.
        Columnar strategies override this with a fused kernel that hoists
        state lookups out of the loop and aggregates traffic accounting —
        still byte-identical, just faster.
        """
        execute_read = self.execute_read
        execute_write = self.execute_write
        for kind, user, now in zip(kinds, users, timestamps):
            if kind == KIND_READ:
                execute_read(user, now)
            else:
                execute_write(user, now)

    def execute_read_batch(
        self, users: Sequence[int], timestamps: Sequence[float]
    ) -> None:
        """Execute a time-ordered run of read requests (one-kind batch)."""
        self.execute_request_batch(_READ_KINDS * len(users), users, timestamps)

    def execute_write_batch(
        self, users: Sequence[int], timestamps: Sequence[float]
    ) -> None:
        """Execute a time-ordered run of write requests (one-kind batch)."""
        self.execute_request_batch(_WRITE_KINDS * len(users), users, timestamps)

    def on_tick(self, now: float) -> None:
        """Periodic maintenance hook (counter rotation, thresholds, eviction)."""

    def on_edge_added(self, follower: int, followee: int, now: float) -> None:
        """The social graph gained an edge (already applied to ``self.graph``)."""

    def on_edge_removed(self, follower: int, followee: int, now: float) -> None:
        """The social graph lost an edge (already applied to ``self.graph``)."""

    # ------------------------------------------------------------------ faults
    def on_server_down(
        self, position: int, now: float, graceful: bool = False
    ) -> RecoveryPlan:
        """A storage server left the cluster; evacuate and re-place its views.

        ``graceful=False`` models a crash: the server's memory is gone, and
        views without a surviving replica must be re-fetched from the
        persistent store (the returned plan's ``recoverable_from_disk``).
        ``graceful=True`` models a planned drain: views are copied out over
        the network before shutdown, so nothing touches the disk.

        Strategies that cannot survive failures keep this default, which
        refuses the event with a clear error.
        """
        raise SimulationError(
            f"strategy {self.name!r} does not support server failures"
        )

    def on_server_up(self, position: int, now: float) -> None:
        """A previously departed server rejoined (with empty memory)."""
        raise SimulationError(
            f"strategy {self.name!r} does not support server recovery"
        )

    def _begin_server_down(
        self, position: int, down_positions: set[int], servers: int
    ) -> None:
        """Shared guard of every ``on_server_down``: validate and register.

        At least one server must stay in service — the cluster can shrink,
        never vanish.
        """
        if not 0 <= position < servers:
            raise SimulationError(f"invalid server position {position}")
        if position in down_positions:
            raise SimulationError(f"server position {position} is already down")
        if len(down_positions) + 1 >= servers:
            raise SimulationError("cannot take down the last available server")
        down_positions.add(position)

    def _begin_server_up(self, position: int, down_positions: set[int]) -> None:
        """Shared guard of every ``on_server_up``: validate and deregister."""
        if position not in down_positions:
            raise SimulationError(f"server position {position} is not down")
        down_positions.discard(position)

    # ------------------------------------------------------------ introspection
    @abstractmethod
    def replica_locations(self) -> dict[int, set[int]]:
        """Map of every user to the *leaf device indices* storing her view."""

    def replica_count(self, user: int) -> int:
        """Number of replicas of one user's view."""
        return len(self.replica_locations().get(user, set()))

    def total_replicas(self) -> int:
        """Total number of replicas stored in the cluster."""
        return sum(len(servers) for servers in self.replica_locations().values())

    def memory_in_use(self) -> int:
        """Total view slots in use (equals :meth:`total_replicas`)."""
        return self.total_replicas()

    # --------------------------------------------------------------- helpers
    def server_device(self, position: int) -> int:
        """Leaf device index of the ``position``-th storage server."""
        assert self.topology is not None
        return self.topology.servers[position].index

    def closest_replica(self, broker: int, servers: set[int] | tuple[int, ...]) -> int:
        """Replica closest to ``broker`` (lowest common ancestor rule).

        Ties are broken with the server identifier, as in the paper's routing
        policy.
        """
        assert self.topology is not None
        if not servers:
            raise SimulationError("cannot route to a view with no replica")
        if len(servers) == 1:
            return next(iter(servers))
        distances = self.topology.distance_row(broker)
        return min(servers, key=lambda s: (distances[s], s))


class StaticPlacementStrategy(PlacementStrategy):
    """Shared behaviour of the static baselines (Random, METIS, hMETIS).

    A static strategy stores exactly one replica per view, never changes the
    placement during the run, and deploys both proxies of a user on the
    broker associated with the server holding her view (paper section 4.1).

    Requests are pure measurements here: every initial graph user is
    assigned up front by ``build_initial_placement`` and reads/writes never
    move replicas, so the sharded runner may partition the request stream
    (lazy placement only fires for users *outside* the initial graph, which
    the shard workers' closed-universe guard excludes).
    """

    shard_requests_pure = True

    def __init__(self) -> None:
        super().__init__()
        #: user -> storage-server position (0 .. num_servers - 1)
        self._assignment: dict[int, int] = {}
        #: flat per-position replica counters, maintained incrementally on
        #: every assignment change (the object days recomputed them from the
        #: full assignment dict on every lazy placement)
        self._load: list[int] = []
        #: server positions currently out of service
        self._down_positions: set[int] = set()
        #: per-position leaf device / proxy broker columns (batch kernels)
        self._device_of_position: list[int] = []
        self._broker_of_position: list[int] = []
        #: run-local roundtrip aggregators of the batch kernels
        self._read_run = None
        self._write_run = None

    # ----------------------------------------------------------- assignment
    @abstractmethod
    def compute_assignment(self) -> dict[int, int]:
        """Return the user → server-position assignment for the bound graph."""

    def build_initial_placement(self) -> None:
        self.require_bound()
        self._assignment = dict(self.compute_assignment())
        missing = set(self.graph.users) - set(self._assignment)
        if missing:
            raise SimulationError(
                f"{self.name} assignment misses {len(missing)} users"
            )
        servers = len(self.topology.servers)
        self._load = [0] * servers
        for position in self._assignment.values():
            if 0 <= position < servers:
                self._load[position] += 1
        # Per-position resolution columns and roundtrip aggregators of the
        # batch kernels (pure functions of the bound topology/accountant).
        self._device_of_position = [server.index for server in self.topology.servers]
        self._broker_of_position = [
            self.topology.proxy_broker_for_server(device)
            for device in self._device_of_position
        ]
        self._read_run = self.accountant.roundtrip_run(
            MessageKind.READ_REQUEST, MessageKind.READ_RESPONSE
        )
        self._write_run = self.accountant.roundtrip_run(
            MessageKind.WRITE_UPDATE, MessageKind.WRITE_ACK
        )

    def assignment(self) -> dict[int, int]:
        """Copy of the user → server-position assignment."""
        return dict(self._assignment)

    def server_position_of(self, user: int) -> int:
        """Server position of a user's (single) replica, assigning lazily for
        users that joined after the initial placement."""
        position = self._assignment.get(user)
        if position is None:
            position = self._least_loaded_position()
            self._assignment[user] = position
            self._load[position] += 1
        return position

    def _least_loaded_position(self) -> int:
        position = pick_least_loaded(self._load, self._down_positions)
        if position is None:
            raise SimulationError("no storage server is available")
        return position

    def server_loads(self) -> tuple[int, ...]:
        """Per-position replica counts (O(1) counters, not recomputed)."""
        return tuple(self._load)

    # ---------------------------------------------------------------- faults
    def on_server_down(
        self, position: int, now: float, graceful: bool = False
    ) -> RecoveryPlan:
        """Re-place every view of the departed server on the survivors.

        Static strategies keep a single replica per view, so a crash always
        goes through the persistent store (slow path): the new host's rack
        broker fetches each lost view with a :data:`REPLICA_COPY` message.
        A graceful drain copies views directly from the leaving server.
        """
        self.require_bound()
        assert self.topology is not None and self.accountant is not None
        servers = len(self.topology.servers)
        self._begin_server_down(position, self._down_positions, servers)

        plan = RecoveryPlan(crashed_server=position)
        source_device = self.server_device(position)
        for user, assigned in self._assignment.items():
            if assigned != position:
                continue
            target = self._least_loaded_position()
            self._load[target] += 1
            self._load[position] -= 1
            self._assignment[user] = target
            target_device = self.server_device(target)
            if graceful:
                plan.recoverable_from_memory.append(user)
                source = source_device
            else:
                plan.recoverable_from_disk.append(user)
                source = self.topology.proxy_broker_for_server(target_device)
            self.accountant.record(
                source, target_device, MessageKind.REPLICA_COPY, now
            )
        return plan

    def on_server_up(self, position: int, now: float) -> None:
        self._begin_server_up(position, self._down_positions)

    # -------------------------------------------------------------- proxies
    def proxy_broker(self, user: int) -> int:
        """Broker hosting both proxies of a user (rack of her view)."""
        assert self.topology is not None
        server = self.server_device(self.server_position_of(user))
        return self.topology.proxy_broker_for_server(server)

    # ------------------------------------------------------------ execution
    def execute_read(
        self, user: int, now: float, targets: tuple[int, ...] | None = None
    ) -> None:
        self.require_bound()
        assert self.graph is not None and self.accountant is not None
        if targets is None:
            if not self.graph.has_user(user):
                return
            targets = tuple(self.graph.following(user))
        broker = self.proxy_broker(user)
        for target in targets:
            server = self.server_device(self.server_position_of(target))
            self.accountant.record_roundtrip(
                broker, server, MessageKind.READ_REQUEST, MessageKind.READ_RESPONSE, now
            )

    def execute_write(self, user: int, now: float) -> None:
        self.require_bound()
        assert self.accountant is not None
        broker = self.proxy_broker(user)
        server = self.server_device(self.server_position_of(user))
        self.accountant.record_roundtrip(
            broker, server, MessageKind.WRITE_UPDATE, MessageKind.WRITE_ACK, now
        )

    # ------------------------------------------------------- batch kernel
    def execute_request_batch(
        self,
        kinds: Sequence[int],
        users: Sequence[int],
        timestamps: Sequence[float],
    ) -> None:
        """Fused flat-array request kernel of the static baselines.

        One pass over the run with every lookup hoisted: assignments come
        straight from the flat assignment/load columns (lazy placement in
        event order, exactly like the scalar path) and read/write
        roundtrips aggregate into ``(broker, server)`` counts applied once
        per distinct path and time bucket.
        """
        if self._read_run is None:
            super().execute_request_batch(kinds, users, timestamps)
            return
        self.require_bound()
        graph = self.graph
        has_user = graph.has_user
        following = graph.following
        assignment = self._assignment
        load = self._load
        device_of = self._device_of_position
        broker_of = self._broker_of_position
        least_loaded = self._least_loaded_position
        read_run = self._read_run
        write_run = self._write_run
        read_counts_for = read_run.counts_for
        write_counts_for = write_run.counts_for
        stride = read_run.stride
        for kind, user, now in zip(kinds, users, timestamps):
            if kind == KIND_READ:
                if not has_user(user):
                    continue
                position = assignment.get(user)
                if position is None:
                    position = least_loaded()
                    assignment[user] = position
                    load[position] += 1
                base = broker_of[position] * stride
                counts = read_counts_for(now)
                for target in following(user):
                    target_position = assignment.get(target)
                    if target_position is None:
                        target_position = least_loaded()
                        assignment[target] = target_position
                        load[target_position] += 1
                    key = base + device_of[target_position]
                    count = counts.get(key)
                    counts[key] = 1 if count is None else count + 1
            else:
                position = assignment.get(user)
                if position is None:
                    position = least_loaded()
                    assignment[user] = position
                    load[position] += 1
                key = broker_of[position] * stride + device_of[position]
                counts = write_counts_for(now)
                count = counts.get(key)
                counts[key] = 1 if count is None else count + 1
        read_run.flush()
        write_run.flush()

    # -------------------------------------------------------- introspection
    def replica_locations(self) -> dict[int, set[int]]:
        return {
            user: {self.server_device(position)}
            for user, position in self._assignment.items()
        }

    def replica_count(self, user: int) -> int:
        return 1 if user in self._assignment else 0

    def has_any_replica(self, user: int) -> bool:
        """O(1) availability check used by the simulator's final audit."""
        return user in self._assignment

    def memory_in_use(self) -> int:
        """One replica per assigned view (O(1), no dict materialisation)."""
        return len(self._assignment)


__all__ = ["PlacementStrategy", "StaticPlacementStrategy"]
