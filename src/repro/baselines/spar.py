"""Memory-capped SPAR baseline (paper section 4.1, "SPAR").

SPAR (Pujol et al., SIGCOMM 2010) co-locates the views of a user's social
neighbourhood on her server so reads are served locally, at the cost of
updating many replicas on writes.  The original middleware assumes unbounded
replication; the paper adapts it to a memory budget: *"The views of the
friends of a user are copied to her server as long as storage is available.
When the server is full, these views are not replicated."*

The implementation below follows that adaptation:

* every user receives a *master* replica on the least-loaded server when she
  first appears in the edge stream (SPAR's load-balancing requirement);
* the social graph's edges are then streamed in random order, and for each
  follow edge ``u → v`` the view of ``v`` is replicated onto ``u``'s master
  server if that server still has free slots;
* the placement is then frozen: SPAR only reacts to changes of the social
  graph, not to request traffic, so the trace is executed against a fixed
  layout (new edges arriving during the run are processed the same way).

Replica placement lives in a statistics-free
:class:`~repro.store.tables.ReplicaTable`: the per-user chains replace the
old ``dict``-of-``set`` location maps, and the per-position ``used``
counters replace the hand-maintained load list, so closest-replica lookups
and evacuation run over the same flat columns as the DynaSoRe engine.

Proxies live on the broker of the rack hosting the user's master replica;
reads are routed to the closest replica of each target view; writes update
every replica of the written view.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.routing import RoutingService
from ..exceptions import SimulationError
from ..persistence.recovery import RecoveryPlan
from ..store.tables import NO_SLOT, ReplicaTable, pick_least_loaded
from ..traffic.messages import MessageKind
from ..workload.stream import KIND_READ
from .base import PlacementStrategy


class SparPlacement(PlacementStrategy):
    """SPAR with the paper's bounded-memory adaptation."""

    name = "spar"

    #: SPAR moves replicas on *edge* events (co-location) and faults, never
    #: on reads or writes — requests are pure measurements, so the sharded
    #: runner may partition the request stream across workers.
    shard_requests_pure = True

    def __init__(self, seed: int = 7) -> None:
        super().__init__()
        self.seed = seed
        #: user -> server position of the master replica
        self._master: dict[int, int] = {}
        #: flat placement table (chains + per-position counters, no stats)
        self.tables: ReplicaTable | None = None
        #: server positions currently out of service
        self._down_positions: set[int] = set()
        #: batch-kernel state: per-position resolution columns, the shared
        #: routing service, run-local aggregators and the closest-replica
        #: memo (broker -> target -> device), cleared on placement changes
        self._device_of_position: list[int] = []
        self._broker_of_position: list[int] = []
        self.routing: RoutingService | None = None
        self._read_run = None
        self._write_run = None
        self._route_memo: dict[int, dict[int, int]] = {}

    # ------------------------------------------------------------- placement
    def build_initial_placement(self) -> None:
        self.require_bound()
        assert self.graph is not None and self.topology is not None and self.budget is not None
        servers = len(self.topology.servers)
        capacities = self.budget.per_server_capacity()
        if len(capacities) != servers:
            raise SimulationError("memory budget does not match the number of servers")
        table = ReplicaTable(positions=servers, with_stats=False)
        for position, capacity in enumerate(capacities):
            table.set_capacity(position, capacity)
        self.tables = table
        self._master = {}
        self._device_of_position = [server.index for server in self.topology.servers]
        self._broker_of_position = [
            self.topology.proxy_broker_for_server(device)
            for device in self._device_of_position
        ]
        self.routing = RoutingService(self.topology)
        self._read_run = self.accountant.roundtrip_run(
            MessageKind.READ_REQUEST, MessageKind.READ_RESPONSE
        )
        self._write_run = self.accountant.roundtrip_run(
            MessageKind.WRITE_UPDATE, MessageKind.WRITE_ACK
        )
        self._route_memo = {}

        # One master replica per user, least-loaded server first.
        for user in self.graph.users:
            self._place_master(user)

        # Stream the edges of the social graph in random order and replicate
        # followees onto followers' servers while space remains.
        edges = list(self.graph.edges())
        self.rng.shuffle(edges)
        for follower, followee in edges:
            self._co_locate(follower, followee)

    def _clear_route_memo(self) -> None:
        """Drop every memoised closest-replica answer (placement changed).

        The per-broker dicts are cleared in place so a running batch kernel
        that hoisted one keeps observing the (now empty, then repopulating)
        live memo.
        """
        for memo in self._route_memo.values():
            memo.clear()

    def _place_master(self, user: int) -> int:
        """Create the master replica of a user on the least-loaded server."""
        table = self.tables
        position = pick_least_loaded(table.used, self._down_positions)
        if position is None:
            raise SimulationError("no storage server is available")
        self._master[user] = position
        table.allocate(user, position)
        self._clear_route_memo()
        return position

    def _co_locate(self, follower: int, followee: int) -> bool:
        """Replicate ``followee``'s view on ``follower``'s master server.

        Returns True when a new replica was created.  Nothing happens when
        the views are already co-located or the server has no free slot.
        """
        if follower not in self._master:
            self._place_master(follower)
        if followee not in self._master:
            self._place_master(followee)
        table = self.tables
        target = self._master[follower]
        if target in self._down_positions:
            return False
        if table.slot_of(followee, target) is not None:
            return False
        if table.used[target] >= table.capacities[target]:
            return False
        table.allocate(followee, target)
        self._clear_route_memo()
        return True

    # ------------------------------------------------------------- execution
    def _master_position(self, user: int) -> int:
        position = self._master.get(user)
        if position is None:
            position = self._place_master(user)
        return position

    def proxy_broker(self, user: int) -> int:
        """Broker of the rack hosting the user's master replica."""
        assert self.topology is not None
        master_device = self.server_device(self._master_position(user))
        return self.topology.proxy_broker_for_server(master_device)

    def execute_read(
        self, user: int, now: float, targets: tuple[int, ...] | None = None
    ) -> None:
        self.require_bound()
        assert self.graph is not None and self.accountant is not None
        if targets is None:
            if not self.graph.has_user(user):
                return
            targets = tuple(self.graph.following(user))
        broker = self.proxy_broker(user)
        table = self.tables
        for target in targets:
            self._master_position(target)
            replicas = {self.server_device(p) for p in table.user_positions(target)}
            server = self.closest_replica(broker, replicas)
            self.accountant.record_roundtrip(
                broker, server, MessageKind.READ_REQUEST, MessageKind.READ_RESPONSE, now
            )

    def execute_write(self, user: int, now: float) -> None:
        self.require_bound()
        assert self.accountant is not None
        broker = self.proxy_broker(user)
        self._master_position(user)
        for position in self.tables.user_positions(user):
            server = self.server_device(position)
            self.accountant.record_roundtrip(
                broker, server, MessageKind.WRITE_UPDATE, MessageKind.WRITE_ACK, now
            )

    # ------------------------------------------------------- batch kernel
    def execute_request_batch(
        self,
        kinds: Sequence[int],
        users: Sequence[int],
        timestamps: Sequence[float],
    ) -> None:
        """Fused SPAR request kernel over the flat replica chains.

        Closest-replica answers are memoised per ``(broker, target)`` —
        SPAR's placement only changes on graph/fault events, which bound
        runs and clear the memo in place — and read/write roundtrips
        aggregate per distinct ``(broker, server)`` path and time bucket.
        """
        if self._read_run is None:
            super().execute_request_batch(kinds, users, timestamps)
            return
        self.require_bound()
        graph = self.graph
        has_user = graph.has_user
        following = graph.following
        master = self._master
        table = self.tables
        user_head = table._user_head
        user_next = table._user_next
        server_column = table._server
        device_of = self._device_of_position
        broker_of = self._broker_of_position
        route_memo = self._route_memo
        batch_resolver = self.routing.batch_resolver
        read_run = self._read_run
        write_run = self._write_run
        read_counts_for = read_run.counts_for
        write_counts_for = write_run.counts_for
        stride = read_run.stride
        for kind, user, now in zip(kinds, users, timestamps):
            if kind == KIND_READ:
                if not has_user(user):
                    continue
                master_position = master.get(user)
                if master_position is None:
                    master_position = self._place_master(user)
                broker = broker_of[master_position]
                memo = route_memo.get(broker)
                if memo is None:
                    memo = route_memo[broker] = {}
                base = broker * stride
                counts = read_counts_for(now)
                resolve = None
                for target in following(user):
                    device = memo.get(target)
                    if device is None:
                        if target not in master:
                            self._place_master(target)
                        slot = user_head[target]
                        if user_next[slot] == NO_SLOT:
                            device = device_of[server_column[slot]]
                        else:
                            if resolve is None:
                                resolve = batch_resolver(broker)
                            devices = []
                            while slot != NO_SLOT:
                                devices.append(device_of[server_column[slot]])
                                slot = user_next[slot]
                            device = resolve(devices)
                        memo[target] = device
                    key = base + device
                    count = counts.get(key)
                    counts[key] = 1 if count is None else count + 1
            else:
                master_position = master.get(user)
                if master_position is None:
                    master_position = self._place_master(user)
                base = broker_of[master_position] * stride
                counts = write_counts_for(now)
                slot = user_head[user]
                while slot != NO_SLOT:
                    key = base + device_of[server_column[slot]]
                    count = counts.get(key)
                    counts[key] = 1 if count is None else count + 1
                    slot = user_next[slot]
        read_run.flush()
        write_run.flush()

    # --------------------------------------------------------- graph changes
    def on_edge_added(self, follower: int, followee: int, now: float) -> None:
        """SPAR reacts to the social graph: try to co-locate the new pair."""
        self._co_locate(follower, followee)

    # ---------------------------------------------------------------- faults
    def on_server_down(
        self, position: int, now: float, graceful: bool = False
    ) -> RecoveryPlan:
        """Evacuate a departed server.

        Masters with a surviving secondary replica are promoted in place
        (fast path, the data is already in memory); masters without one are
        re-created on the least-loaded survivor — from the persistent store
        after a crash, by direct copy on a graceful drain.  Secondary
        (co-location) replicas lost with the server are simply dropped;
        SPAR re-creates them lazily as the edge stream evolves.
        """
        self.require_bound()
        assert self.topology is not None and self.accountant is not None
        servers = len(self.topology.servers)
        self._begin_server_down(position, self._down_positions, servers)
        table = self.tables

        plan = RecoveryPlan(crashed_server=position)
        source_device = self.server_device(position)
        affected = set(table.users_at(position))
        for user in self._master:
            if user not in affected:
                continue
            doomed = table.slot_of(user, position)
            table.free(doomed)
            if self._master.get(user) != position:
                continue  # a lost secondary replica; the master survives
            remaining = table.user_positions(user)
            if remaining:
                # Promote the closest surviving replica to master.
                self._master[user] = min(remaining)
                plan.recoverable_from_memory.append(user)
                continue
            target = pick_least_loaded(table.used, self._down_positions)
            if target is None:
                raise SimulationError("no storage server is available")
            table.allocate(user, target)
            self._master[user] = target
            target_device = self.server_device(target)
            if graceful:
                plan.recoverable_from_memory.append(user)
                source = source_device
            else:
                plan.recoverable_from_disk.append(user)
                source = self.topology.proxy_broker_for_server(target_device)
            self.accountant.record(
                source, target_device, MessageKind.REPLICA_COPY, now
            )
        self._clear_route_memo()
        return plan

    def on_server_up(self, position: int, now: float) -> None:
        """The server rejoins empty; co-location refills it as edges arrive."""
        self._begin_server_up(position, self._down_positions)
        self._clear_route_memo()

    # ----------------------------------------------------------- introspection
    def replica_locations(self) -> dict[int, set[int]]:
        table = self.tables
        return {
            user: {self.server_device(position) for position in table.user_positions(user)}
            for user in table.users()
        }

    def replica_count(self, user: int) -> int:
        return self.tables.user_replica_count(user) if self.tables is not None else 0

    def has_any_replica(self, user: int) -> bool:
        """O(1) availability check used by the simulator's final audit."""
        return self.tables is not None and self.tables.has_user(user)

    def memory_in_use(self) -> int:
        """Total replicas stored (O(1) from the table counters)."""
        return self.tables.active_count if self.tables is not None else 0

    def replication_factor(self) -> float:
        """Average number of replicas per view."""
        table = self.tables
        if table is None or not len(table._user_head):
            return 0.0
        return table.active_count / len(table._user_head)


__all__ = ["SparPlacement"]
