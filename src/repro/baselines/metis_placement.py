"""METIS baseline (paper section 4.1, "METIS").

The social graph is statically partitioned into one part per storage server
using the multilevel k-way partitioner, and each part is assigned to a
server.  The placement leverages the clustering of social graphs — friends
tend to land on the same server — but ignores the switch hierarchy and never
replicates.
"""

from __future__ import annotations

from ..partitioning.kway import partition_kway
from ..socialgraph.graph import SocialGraph
from ..topology.base import ClusterTopology
from .base import StaticPlacementStrategy


def metis_assignment(graph: SocialGraph, topology: ClusterTopology, seed: int = 7) -> dict[int, int]:
    """Flat k-way graph-partitioning assignment (one part per server).

    The parts are mapped to servers in part order, which mirrors the paper's
    "randomly assign each partition to a server": part identity carries no
    topology information either way.
    """
    adjacency = graph.undirected_adjacency()
    result = partition_kway(adjacency, len(topology.servers), seed=seed)
    return result.assignment


class MetisPlacement(StaticPlacementStrategy):
    """Static graph-partitioning placement that ignores the network tree."""

    name = "metis"

    def __init__(self, seed: int = 7) -> None:
        super().__init__()
        self.seed = seed

    def compute_assignment(self) -> dict[int, int]:
        assert self.graph is not None and self.topology is not None
        return metis_assignment(self.graph, self.topology, seed=self.seed)


__all__ = ["MetisPlacement", "metis_assignment"]
