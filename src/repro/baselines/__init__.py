"""Baseline placement strategies: Random, METIS, hierarchical METIS, SPAR."""

from .base import PlacementStrategy, StaticPlacementStrategy
from .hmetis_placement import HierarchicalMetisPlacement, hmetis_assignment
from .metis_placement import MetisPlacement, metis_assignment
from .random_placement import RandomPlacement, random_assignment
from .spar import SparPlacement

__all__ = [
    "HierarchicalMetisPlacement",
    "MetisPlacement",
    "PlacementStrategy",
    "RandomPlacement",
    "SparPlacement",
    "StaticPlacementStrategy",
    "hmetis_assignment",
    "metis_assignment",
    "random_assignment",
]
