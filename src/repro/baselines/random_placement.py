"""Random placement baseline (paper section 4.1, "Random").

In-memory stores such as memcached and Redis hash keys to servers, which is
equivalent to a uniform random static assignment.  The baseline ignores the
data-center topology and the social graph and never replicates.  The paper
normalises every reported traffic number by this baseline's traffic.
"""

from __future__ import annotations

from ..partitioning.kway import random_partition
from ..socialgraph.graph import SocialGraph
from ..topology.base import ClusterTopology
from .base import StaticPlacementStrategy


def random_assignment(graph: SocialGraph, topology: ClusterTopology, seed: int = 7) -> dict[int, int]:
    """Uniform random, balanced user → server-position assignment."""
    result = random_partition(list(graph.users), len(topology.servers), seed=seed)
    return result.assignment


class RandomPlacement(StaticPlacementStrategy):
    """Hash-style random assignment of views to servers."""

    name = "random"

    def __init__(self, seed: int = 7) -> None:
        super().__init__()
        self.seed = seed

    def compute_assignment(self) -> dict[int, int]:
        assert self.graph is not None and self.topology is not None
        return random_assignment(self.graph, self.topology, seed=self.seed)


__all__ = ["RandomPlacement", "random_assignment"]
