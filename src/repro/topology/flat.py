"""Flat topology used by the paper's fairness experiment (section 4.5).

All machines are connected to a single switch and every machine acts as both
a cache server and a broker (the configuration used to evaluate SPAR in its
original paper).  Locality therefore means *co-location on the same machine*:
an access served from the local machine traverses no switch, every other
access traverses exactly the single switch.
"""

from __future__ import annotations

from ..config import FlatClusterSpec
from ..exceptions import TopologyError
from .base import ClusterTopology
from .devices import Device, DeviceKind, DeviceRegistry


class FlatTopology(ClusterTopology):
    """Single-switch topology where every machine is both server and broker."""

    def __init__(self, spec: FlatClusterSpec | None = None) -> None:
        self.spec = spec or FlatClusterSpec()
        registry = DeviceRegistry()
        top = registry.add("ST", DeviceKind.TOP_SWITCH, parent=None)
        self._switch_index = top.index

        machines: list[Device] = []
        for i in range(1, self.spec.machines + 1):
            machine = registry.add(f"M{i}", DeviceKind.SERVER, parent=top.index)
            machines.append(machine)

        self.devices = list(registry.devices)
        # Every machine stores views *and* hosts proxies.
        self.servers = machines
        self.brokers = machines
        self.switches = [self.devices[self._switch_index]]
        self._machine_indices = tuple(machine.index for machine in machines)
        #: The one-switch path shared by every non-local machine pair.
        self._switch_path = (self._switch_index,)
        self._ensure_table_caches()

    # ------------------------------------------------------------------ paths
    def _build_path_row(self, leaf: int) -> list[tuple[int, ...] | None]:
        """Precomputed paths: () to itself, the single switch to every other."""
        self._check_leaf(leaf)
        row: list[tuple[int, ...] | None] = [None] * len(self.devices)
        for machine in self._machine_indices:
            row[machine] = self._switch_path
        row[leaf] = ()
        return row

    def path_between(self, leaf_a: int, leaf_b: int) -> tuple[int, ...]:
        """Empty path for local accesses, the single switch otherwise."""
        self._check_leaf(leaf_a)
        self._check_leaf(leaf_b)
        if leaf_a == leaf_b:
            return ()
        return self._switch_path

    # ------------------------------------------------------ origin coarsening
    def origin_of(self, observer_server: int, source_leaf: int) -> int:
        """In a flat cluster each machine is its own origin."""
        self._check_leaf(observer_server)
        self._check_leaf(source_leaf)
        return source_leaf

    def origin_regions(self, observer_server: int) -> tuple[int, ...]:
        """Every machine is a potential origin."""
        self._check_leaf(observer_server)
        return self._machine_indices

    def cost_from_origin(self, origin: int, server: int) -> int:
        """0 when the origin is the server itself, 1 otherwise."""
        self._check_leaf(origin)
        self._check_leaf(server)
        return 0 if origin == server else 1

    def servers_under(self, origin: int) -> tuple[int, ...]:
        """A machine origin contains only itself; the switch contains all."""
        if origin == self._switch_index:
            return self._machine_indices
        self._check_leaf(origin)
        return (origin,)

    def brokers_under(self, switch: int) -> tuple[int, ...]:
        """Brokers below a switch (or the single machine of a leaf origin)."""
        return self.servers_under(switch)

    # ------------------------------------------------------------- structure
    def rack_of(self, leaf: int) -> int:
        """The single switch plays the role of every rack switch."""
        self._check_leaf(leaf)
        return self._switch_index

    def intermediate_of(self, leaf: int) -> int:
        """The single switch also plays the role of the intermediate tier."""
        self._check_leaf(leaf)
        return self._switch_index

    def broker_for_rack(self, rack_switch: int) -> int:
        """First machine of the cluster (only meaningful for compatibility)."""
        if rack_switch != self._switch_index:
            raise TopologyError("flat topology has a single switch")
        return self._machine_indices[0]

    def level_of(self, switch: int) -> str:
        """The single switch is reported at the ``top`` level."""
        if switch != self._switch_index:
            raise TopologyError(f"device {switch} is not a switch")
        return "top"

    def proxy_broker_for_server(self, server_leaf: int) -> int:
        """Every machine hosts its own proxies in the flat topology."""
        self._check_leaf(server_leaf)
        return server_leaf

    # ------------------------------------------------------------ convenience
    def co_located(self, broker: int, server: int) -> bool:
        """True when the broker and server are the same physical machine."""
        return broker == server

    def _check_leaf(self, leaf: int) -> None:
        if leaf < 0 or leaf >= len(self.devices):
            raise TopologyError(f"device index {leaf} out of range")
        if not self.devices[leaf].kind.is_leaf:
            raise TopologyError(f"device {self.devices[leaf].name} is not a machine")


__all__ = ["FlatTopology"]
