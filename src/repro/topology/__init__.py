"""Data-center network topologies (tree and flat) used by the simulator."""

from .base import ClusterTopology
from .devices import Device, DeviceKind, DeviceRegistry
from .flat import FlatTopology
from .tree import TreeTopology

__all__ = [
    "ClusterTopology",
    "Device",
    "DeviceKind",
    "DeviceRegistry",
    "FlatTopology",
    "TreeTopology",
]
