"""Common interface shared by the tree and flat cluster topologies.

The placement algorithms only ever interact with a topology through this
interface: they ask for the switch path between two leaf machines, for the
network distance (number of switches traversed), for the coarse-grained
*origin* of an access as seen from a storage server (paper section 3.2,
"Access statistics") and for the cost of serving an origin from a candidate
server.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from .devices import Device


class ClusterTopology(ABC):
    """Abstract view of a data-center network as seen by DynaSoRe."""

    #: All devices (switches and leaf machines), indexed by ``Device.index``.
    devices: list[Device]
    #: Storage servers, i.e. machines that hold view replicas.
    servers: list[Device]
    #: Brokers, i.e. machines that host read/write proxies.
    brokers: list[Device]
    #: Switches (every non-leaf device).
    switches: list[Device]

    # ------------------------------------------------------------------ paths
    @abstractmethod
    def path_between(self, leaf_a: int, leaf_b: int) -> tuple[int, ...]:
        """Indices of the switches traversed by a message from ``leaf_a`` to
        ``leaf_b``.  An empty tuple means the message never leaves the
        machine (only possible when a broker and a server are the same
        physical machine, as in the flat topology)."""

    def distance(self, leaf_a: int, leaf_b: int) -> int:
        """Network distance: number of switches on the path (paper §2.2)."""
        return len(self.path_between(leaf_a, leaf_b))

    # --------------------------------------------------- precomputed tables
    # Topologies are immutable once built, so per-leaf rows of paths,
    # distances and origin costs can be resolved once and then served as
    # plain list lookups.  The rows are built lazily (only the leaves a
    # simulation actually touches pay the construction cost) and cached for
    # the lifetime of the topology.  They are what the traffic accountant
    # and the utility computation index in their hot loops.

    def _ensure_table_caches(self) -> None:
        if not hasattr(self, "_path_rows"):
            count = len(self.devices)
            self._path_rows: list[list[tuple[int, ...] | None] | None] = [None] * count
            self._distance_rows: list[list[int | None] | None] = [None] * count
            self._cost_rows: list[list[int | None] | None] = [None] * count
            self._origin_label_cache: tuple[int, ...] | None = None

    def _build_path_row(self, leaf: int) -> list[tuple[int, ...] | None]:
        """Switch paths from ``leaf`` to every other leaf (None elsewhere)."""
        row: list[tuple[int, ...] | None] = [None] * len(self.devices)
        for device in self.devices:
            if device.kind.is_leaf:
                row[device.index] = self.path_between(leaf, device.index)
        return row

    def path_row(self, leaf: int) -> list[tuple[int, ...] | None]:
        """Cached row of switch paths from ``leaf`` to every leaf device.

        Entries for non-leaf destinations are ``None``; raises when ``leaf``
        itself is not a leaf machine.
        """
        self._ensure_table_caches()
        if not 0 <= leaf < len(self.devices) or not self.devices[leaf].kind.is_leaf:
            from ..exceptions import TopologyError

            raise TopologyError(f"device {leaf} is not a leaf machine")
        row = self._path_rows[leaf]
        if row is None:
            row = self._build_path_row(leaf)
            self._path_rows[leaf] = row
        return row

    def distance_row(self, leaf: int) -> list[int | None]:
        """Cached row of network distances from ``leaf`` to every leaf."""
        try:
            row = self._distance_rows[leaf]
        except AttributeError:
            self._ensure_table_caches()
            row = self._distance_rows[leaf]
        if row is None:
            paths = self.path_row(leaf)
            row = [len(path) if path is not None else None for path in paths]
            self._distance_rows[leaf] = row
        return row

    def origin_labels(self) -> tuple[int, ...]:
        """Every origin label any storage server may record."""
        self._ensure_table_caches()
        if self._origin_label_cache is None:
            labels: set[int] = set()
            for server in self.servers:
                labels.update(self.origin_regions(server.index))
            self._origin_label_cache = tuple(sorted(labels))
        return self._origin_label_cache

    def cost_row(self, leaf: int) -> list[int | None]:
        """Cached ``origin -> switches traversed`` costs of serving from
        ``leaf`` (None for devices that are not valid origin labels)."""
        try:
            row = self._cost_rows[leaf]
        except AttributeError:
            self._ensure_table_caches()
            row = self._cost_rows[leaf]
        if row is None:
            row = [None] * len(self.devices)
            for origin in self.origin_labels():
                row[origin] = self.cost_from_origin(origin, leaf)
            self._cost_rows[leaf] = row
        return row

    # ------------------------------------------------------ origin coarsening
    @abstractmethod
    def origin_of(self, observer_server: int, source_leaf: int) -> int:
        """Coarse-grained origin label of an access.

        ``observer_server`` is the storage server recording the access and
        ``source_leaf`` the broker (or machine) issuing it.  The label is the
        index of the switch used as the aggregation bucket: the source's rack
        switch when it shares the observer's intermediate switch, otherwise
        the source's intermediate switch (paper section 3.2)."""

    @abstractmethod
    def origin_regions(self, observer_server: int) -> tuple[int, ...]:
        """All origin labels a given server may record."""

    @abstractmethod
    def cost_from_origin(self, origin: int, server: int) -> int:
        """Number of switches traversed by a request issued from ``origin``
        and served by ``server``.  Used by Algorithm 1 to price reads."""

    @abstractmethod
    def servers_under(self, origin: int) -> tuple[int, ...]:
        """Indices of the storage servers located below an origin label."""

    @abstractmethod
    def brokers_under(self, switch: int) -> tuple[int, ...]:
        """Indices of the brokers located below a switch."""

    # ------------------------------------------------------------- structure
    @abstractmethod
    def rack_of(self, leaf: int) -> int:
        """Index of the rack switch of a leaf machine."""

    @abstractmethod
    def intermediate_of(self, leaf: int) -> int:
        """Index of the intermediate switch of a leaf machine."""

    @abstractmethod
    def broker_for_rack(self, rack_switch: int) -> int:
        """Index of a broker attached to the given rack switch."""

    @abstractmethod
    def level_of(self, switch: int) -> str:
        """Report level of a switch: ``"top"``, ``"intermediate"`` or
        ``"rack"``."""

    def proxy_broker_for_server(self, server_leaf: int) -> int:
        """Broker naturally associated with a storage server.

        In the tree topology this is the broker of the server's rack (the
        baselines deploy a user's proxies on the broker of the rack hosting
        her view); the flat topology overrides this because every machine is
        its own broker.
        """
        return self.broker_for_rack(self.rack_of(server_leaf))

    # ------------------------------------------------------------ convenience
    @property
    def top_switch(self) -> Device:
        """The root switch of the topology."""
        return self.switches[0]

    def server_indices(self) -> tuple[int, ...]:
        """Indices of every storage server."""
        return tuple(server.index for server in self.servers)

    def broker_indices(self) -> tuple[int, ...]:
        """Indices of every broker."""
        return tuple(broker.index for broker in self.brokers)

    def describe(self) -> str:
        """One-line human readable description of the topology."""
        return (
            f"{type(self).__name__}: {len(self.switches)} switches, "
            f"{len(self.servers)} servers, {len(self.brokers)} brokers"
        )

    def validate_leaf(self, leaf: int, allowed: Sequence[Device]) -> None:
        """Raise if ``leaf`` is not one of the allowed leaf devices."""
        from ..exceptions import TopologyError

        if leaf < 0 or leaf >= len(self.devices):
            raise TopologyError(f"device index {leaf} out of range")
        if not self.devices[leaf].kind.is_leaf:
            raise TopologyError(f"device {self.devices[leaf].name} is not a leaf machine")
        if allowed and self.devices[leaf] not in allowed:
            raise TopologyError(f"device {self.devices[leaf].name} not allowed here")


__all__ = ["ClusterTopology"]
