"""Devices of the simulated data center.

A device is either a network switch (top, intermediate or rack tier) or a
leaf machine (storage server or broker).  Devices are identified by a dense
integer index so that traffic accounting can use flat arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class DeviceKind(str, Enum):
    """Role of a device in the cluster."""

    TOP_SWITCH = "top_switch"
    INTERMEDIATE_SWITCH = "intermediate_switch"
    RACK_SWITCH = "rack_switch"
    SERVER = "server"
    BROKER = "broker"

    @property
    def is_switch(self) -> bool:
        """True for the three switch tiers."""
        return self in (
            DeviceKind.TOP_SWITCH,
            DeviceKind.INTERMEDIATE_SWITCH,
            DeviceKind.RACK_SWITCH,
        )

    @property
    def is_leaf(self) -> bool:
        """True for machines directly attached to a rack switch."""
        return self in (DeviceKind.SERVER, DeviceKind.BROKER)


@dataclass(frozen=True)
class Device:
    """A single device in the cluster.

    Attributes
    ----------
    index:
        Dense integer identifier, unique across the whole topology.
    name:
        Human readable name such as ``"S-1.2.3"`` (server 3 of rack 2 under
        intermediate switch 1) used in reports and error messages.
    kind:
        Tier of the device.
    parent:
        Index of the parent device (the rack switch of a leaf, the
        intermediate switch of a rack switch, the top switch of an
        intermediate switch).  ``None`` for the root.
    """

    index: int
    name: str
    kind: DeviceKind
    parent: int | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass
class DeviceRegistry:
    """Mutable builder collecting devices while a topology is constructed."""

    devices: list[Device] = field(default_factory=list)

    def add(self, name: str, kind: DeviceKind, parent: int | None = None) -> Device:
        """Create, register and return a new device."""
        device = Device(index=len(self.devices), name=name, kind=kind, parent=parent)
        self.devices.append(device)
        return device

    def __len__(self) -> int:
        return len(self.devices)

    def __getitem__(self, index: int) -> Device:
        return self.devices[index]


__all__ = ["Device", "DeviceKind", "DeviceRegistry"]
