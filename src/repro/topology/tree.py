"""Three-level tree topology (core / intermediate / edge) from the paper.

The cluster is a tree: a single top switch connects ``m`` intermediate
switches, each intermediate switch connects ``n`` rack switches, and each rack
switch connects ``machines_per_rack`` leaf machines of which a configurable
number act as brokers and the rest as storage servers (paper Figure 1).

Messages between two leaf machines traverse the switches on the unique tree
path between them:

* same rack                      → 1 switch  (the rack switch)
* same intermediate, other rack  → 3 switches (rack, intermediate, rack)
* different intermediate         → 5 switches (rack, intermediate, top,
  intermediate, rack)

Access origins are coarsened exactly as described in section 3.2: a server
records, for each access, either the source's rack switch (when the source
shares the server's intermediate switch) or the source's intermediate switch
(otherwise), so a replica tracks at most ``n + m - 1`` origins.
"""

from __future__ import annotations

from ..config import ClusterSpec
from ..exceptions import TopologyError
from .base import ClusterTopology
from .devices import Device, DeviceKind, DeviceRegistry


class TreeTopology(ClusterTopology):
    """Concrete tree-of-switches topology.

    Parameters
    ----------
    spec:
        Shape of the cluster.  Defaults to the paper's 5 x 5 x 10 layout.
    """

    def __init__(self, spec: ClusterSpec | None = None) -> None:
        self.spec = spec or ClusterSpec()
        registry = DeviceRegistry()

        top = registry.add("ST", DeviceKind.TOP_SWITCH, parent=None)
        self._top_index = top.index

        self._intermediate_indices: list[int] = []
        self._rack_indices: list[int] = []
        self._rack_to_intermediate: dict[int, int] = {}
        self._rack_servers: dict[int, list[int]] = {}
        self._rack_brokers: dict[int, list[int]] = {}
        self._leaf_rack: dict[int, int] = {}

        servers: list[Device] = []
        brokers: list[Device] = []

        for i in range(1, self.spec.intermediate_switches + 1):
            inter = registry.add(f"SI{i}", DeviceKind.INTERMEDIATE_SWITCH, parent=top.index)
            self._intermediate_indices.append(inter.index)
            for r in range(1, self.spec.racks_per_intermediate + 1):
                rack = registry.add(f"SR{i}.{r}", DeviceKind.RACK_SWITCH, parent=inter.index)
                self._rack_indices.append(rack.index)
                self._rack_to_intermediate[rack.index] = inter.index
                self._rack_servers[rack.index] = []
                self._rack_brokers[rack.index] = []
                for b in range(1, self.spec.brokers_per_rack + 1):
                    broker = registry.add(f"B{i}.{r}.{b}", DeviceKind.BROKER, parent=rack.index)
                    brokers.append(broker)
                    self._rack_brokers[rack.index].append(broker.index)
                    self._leaf_rack[broker.index] = rack.index
                for s in range(1, self.spec.servers_per_rack + 1):
                    server = registry.add(f"S{i}.{r}.{s}", DeviceKind.SERVER, parent=rack.index)
                    servers.append(server)
                    self._rack_servers[rack.index].append(server.index)
                    self._leaf_rack[server.index] = rack.index

        self.devices = list(registry.devices)
        self.servers = servers
        self.brokers = brokers
        self.switches = [d for d in self.devices if d.kind.is_switch]

        # Pre-compute per-intermediate groupings used by origin coarsening.
        self._intermediate_racks: dict[int, tuple[int, ...]] = {}
        for rack, inter in self._rack_to_intermediate.items():
            self._intermediate_racks.setdefault(inter, ())
        for inter in self._intermediate_indices:
            self._intermediate_racks[inter] = tuple(
                rack for rack in self._rack_indices if self._rack_to_intermediate[rack] == inter
            )

        self._servers_under_switch: dict[int, tuple[int, ...]] = {}
        self._brokers_under_switch: dict[int, tuple[int, ...]] = {}
        for rack in self._rack_indices:
            self._servers_under_switch[rack] = tuple(self._rack_servers[rack])
            self._brokers_under_switch[rack] = tuple(self._rack_brokers[rack])
        for inter in self._intermediate_indices:
            racks = self._intermediate_racks[inter]
            self._servers_under_switch[inter] = tuple(
                s for rack in racks for s in self._rack_servers[rack]
            )
            self._brokers_under_switch[inter] = tuple(
                b for rack in racks for b in self._rack_brokers[rack]
            )
        self._servers_under_switch[self._top_index] = tuple(s.index for s in servers)
        self._brokers_under_switch[self._top_index] = tuple(b.index for b in brokers)

        self._rack_pair_paths: dict[tuple[int, int], tuple[int, ...]] = {}
        self._ensure_table_caches()

    # ------------------------------------------------------------------ paths
    def _rack_pair_path(self, rack_a: int, rack_b: int) -> tuple[int, ...]:
        """Shared path tuple between two racks (identical for all leaf pairs)."""
        key = (rack_a, rack_b)
        cached = self._rack_pair_paths.get(key)
        if cached is not None:
            return cached
        if rack_a == rack_b:
            path: tuple[int, ...] = (rack_a,)
        else:
            inter_a = self._rack_to_intermediate[rack_a]
            inter_b = self._rack_to_intermediate[rack_b]
            if inter_a == inter_b:
                path = (rack_a, inter_a, rack_b)
            else:
                path = (rack_a, inter_a, self._top_index, inter_b, rack_b)
        self._rack_pair_paths[key] = path
        return path

    def _build_path_row(self, leaf: int) -> list[tuple[int, ...] | None]:
        """Precomputed switch paths from ``leaf`` to every other leaf.

        Path tuples are shared per rack pair, so the full leaf-by-leaf table
        costs one tuple per rack pair plus one pointer per leaf pair.
        """
        rack_a = self._leaf_rack.get(leaf)
        if rack_a is None:
            raise TopologyError(f"device {leaf} is not a leaf machine")
        row: list[tuple[int, ...] | None] = [None] * len(self.devices)
        for other, rack_b in self._leaf_rack.items():
            row[other] = self._rack_pair_path(rack_a, rack_b)
        row[leaf] = ()
        return row

    def path_between(self, leaf_a: int, leaf_b: int) -> tuple[int, ...]:
        """Switches on the tree path between two leaf machines."""
        rows = self._path_rows
        if not 0 <= leaf_a < len(rows) or not 0 <= leaf_b < len(rows):
            raise TopologyError(f"devices {leaf_a} and {leaf_b} must both be leaf machines")
        row = rows[leaf_a]
        if row is None:
            row = self._build_path_row(leaf_a)
            rows[leaf_a] = row
        path = row[leaf_b]
        if path is None:
            raise TopologyError(f"devices {leaf_a} and {leaf_b} must both be leaf machines")
        return path

    # ------------------------------------------------------ origin coarsening
    def origin_of(self, observer_server: int, source_leaf: int) -> int:
        """Origin label of an access to ``observer_server`` from ``source_leaf``."""
        source_rack = self._leaf_rack.get(source_leaf)
        observer_rack = self._leaf_rack.get(observer_server)
        if source_rack is None or observer_rack is None:
            raise TopologyError("origin_of expects two leaf machines")
        source_inter = self._rack_to_intermediate[source_rack]
        observer_inter = self._rack_to_intermediate[observer_rack]
        if source_inter == observer_inter:
            return source_rack
        return source_inter

    def origin_regions(self, observer_server: int) -> tuple[int, ...]:
        """All origin labels ``observer_server`` may record (n + m - 1 labels)."""
        observer_rack = self._leaf_rack.get(observer_server)
        if observer_rack is None:
            raise TopologyError("origin_regions expects a leaf machine")
        observer_inter = self._rack_to_intermediate[observer_rack]
        sibling_racks = self._intermediate_racks[observer_inter]
        other_intermediates = tuple(
            inter for inter in self._intermediate_indices if inter != observer_inter
        )
        return sibling_racks + other_intermediates

    def cost_from_origin(self, origin: int, server: int) -> int:
        """Switches traversed by a request issued under ``origin`` and served
        by ``server``.

        When the origin is a rack switch the request comes from that rack's
        broker: the cost is 1 (same rack), 3 (same intermediate) or 5.  When
        the origin is an intermediate switch the requests are aggregated over
        a whole sub-tree, so the cost is 3 when the server sits below that
        switch (rack, intermediate, rack in the common case) and 5 otherwise.
        """
        device = self.devices[origin]
        server_rack = self._leaf_rack.get(server)
        if server_rack is None:
            raise TopologyError("cost_from_origin expects a leaf server")
        server_inter = self._rack_to_intermediate[server_rack]
        if device.kind is DeviceKind.RACK_SWITCH:
            if origin == server_rack:
                return 1
            if self._rack_to_intermediate[origin] == server_inter:
                return 3
            return 5
        if device.kind is DeviceKind.INTERMEDIATE_SWITCH:
            return 3 if origin == server_inter else 5
        raise TopologyError(f"device {device.name} is not a valid origin label")

    def servers_under(self, origin: int) -> tuple[int, ...]:
        """Storage servers below an origin switch."""
        try:
            return self._servers_under_switch[origin]
        except KeyError as exc:
            raise TopologyError(f"device {origin} is not a switch") from exc

    def brokers_under(self, switch: int) -> tuple[int, ...]:
        """Brokers below a switch."""
        try:
            return self._brokers_under_switch[switch]
        except KeyError as exc:
            raise TopologyError(f"device {switch} is not a switch") from exc

    # ------------------------------------------------------------- structure
    def rack_of(self, leaf: int) -> int:
        """Rack switch of a leaf machine."""
        try:
            return self._leaf_rack[leaf]
        except KeyError as exc:
            raise TopologyError(f"device {leaf} is not a leaf machine") from exc

    def intermediate_of(self, leaf: int) -> int:
        """Intermediate switch of a leaf machine."""
        return self._rack_to_intermediate[self.rack_of(leaf)]

    def broker_for_rack(self, rack_switch: int) -> int:
        """First broker attached to a rack switch."""
        brokers = self._rack_brokers.get(rack_switch)
        if not brokers:
            raise TopologyError(f"device {rack_switch} is not a rack switch")
        return brokers[0]

    def level_of(self, switch: int) -> str:
        """Report level (``top`` / ``intermediate`` / ``rack``) of a switch."""
        kind = self.devices[switch].kind
        if kind is DeviceKind.TOP_SWITCH:
            return "top"
        if kind is DeviceKind.INTERMEDIATE_SWITCH:
            return "intermediate"
        if kind is DeviceKind.RACK_SWITCH:
            return "rack"
        raise TopologyError(f"device {self.devices[switch].name} is not a switch")

    # ------------------------------------------------------------ convenience
    @property
    def rack_switches(self) -> tuple[int, ...]:
        """Indices of every rack switch."""
        return tuple(self._rack_indices)

    @property
    def intermediate_switches(self) -> tuple[int, ...]:
        """Indices of every intermediate switch."""
        return tuple(self._intermediate_indices)

    @property
    def top_switch_index(self) -> int:
        """Index of the top switch."""
        return self._top_index

    def servers_in_rack(self, rack_switch: int) -> tuple[int, ...]:
        """Storage servers attached to a rack switch."""
        return tuple(self._rack_servers[rack_switch])

    def racks_under_intermediate(self, intermediate: int) -> tuple[int, ...]:
        """Rack switches attached to an intermediate switch."""
        return self._intermediate_racks[intermediate]


__all__ = ["TreeTopology"]
