"""Workload substrate: request logs, synthetic and trace generators."""

from .flash import FlashEventSpec, flash_event_log, inject_flash_event, plan_flash_event
from .requests import EdgeAdded, EdgeRemoved, ReadRequest, Request, RequestLog, WriteRequest
from .synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator
from .trace import NewsActivityTraceConfig, NewsActivityTraceGenerator

__all__ = [
    "EdgeAdded",
    "EdgeRemoved",
    "FlashEventSpec",
    "NewsActivityTraceConfig",
    "NewsActivityTraceGenerator",
    "ReadRequest",
    "Request",
    "RequestLog",
    "SyntheticWorkloadConfig",
    "SyntheticWorkloadGenerator",
    "WriteRequest",
    "flash_event_log",
    "inject_flash_event",
    "plan_flash_event",
]
