"""Workload substrate: columnar event streams, trace files, generators.

The data path is the chunked struct-of-arrays pipeline of
:mod:`repro.workload.stream`; the object model (:class:`RequestLog` and the
request dataclasses) remains as a thin adapter for callers that want to
inspect or hand-build small workloads.
"""

from .activity import (
    ActivityProfile,
    activity_for_spec,
    analytic_activity,
    profile_stream,
    profile_trace,
)
from .flash import (
    FlashEventSpec,
    flash_event_log,
    flash_event_stream,
    inject_flash_event,
    inject_flash_stream,
    plan_flash_event,
)
from .io import read_trace, trace_content_hash, write_trace
from .models import (
    CelebrityReadStormGenerator,
    CelebrityStormConfig,
    ParetoBurstConfig,
    ParetoBurstWorkloadGenerator,
)
from .requests import EdgeAdded, EdgeRemoved, ReadRequest, Request, RequestLog, WriteRequest
from .stream import (
    CHUNK_EVENTS,
    EventChunk,
    EventStream,
    StreamStats,
    as_stream,
    events_per_day,
    merge_streams,
)
from .synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator
from .trace import NewsActivityTraceConfig, NewsActivityTraceGenerator

__all__ = [
    "ActivityProfile",
    "CHUNK_EVENTS",
    "CelebrityReadStormGenerator",
    "CelebrityStormConfig",
    "EdgeAdded",
    "EdgeRemoved",
    "EventChunk",
    "EventStream",
    "FlashEventSpec",
    "NewsActivityTraceConfig",
    "NewsActivityTraceGenerator",
    "ParetoBurstConfig",
    "ParetoBurstWorkloadGenerator",
    "ReadRequest",
    "Request",
    "RequestLog",
    "StreamStats",
    "SyntheticWorkloadConfig",
    "SyntheticWorkloadGenerator",
    "WriteRequest",
    "activity_for_spec",
    "analytic_activity",
    "as_stream",
    "events_per_day",
    "flash_event_log",
    "flash_event_stream",
    "inject_flash_event",
    "inject_flash_stream",
    "merge_streams",
    "plan_flash_event",
    "profile_stream",
    "profile_trace",
    "read_trace",
    "trace_content_hash",
    "write_trace",
]
