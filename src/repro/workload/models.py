"""Additional workload models for scenario diversity.

The paper evaluates an evenly-spread synthetic workload and a diurnal
trace; real social traffic is burstier than either.  Two stream-native
models widen the scenario space:

* :class:`ParetoBurstWorkloadGenerator` — interarrival gaps drawn from a
  Pareto distribution, so traffic arrives in heavy-tailed bursts separated
  by lulls.  Adaptive placement must not thrash when the arrival process
  itself is bursty, not just when the *who* changes;
* :class:`CelebrityReadStormGenerator` — a background workload plus read
  storms around the best-connected users: a celebrity posts, and her
  followers pile onto her view within a short window.  This concentrates
  read load on a few hot views without any graph mutation (the flash-event
  experiment's complement).

Both generators emit chunked columnar streams and derive randomness from
one dedicated ``random.Random`` per model (and per celebrity for storms),
consumed in stream order — chunk boundaries never perturb the draws.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterator
from dataclasses import dataclass
from itertools import accumulate

from ..constants import DAY, HOUR
from ..exceptions import WorkloadError
from ..socialgraph.graph import SocialGraph
from .requests import RequestLog
from .stream import (
    CHUNK_EVENTS,
    EventChunk,
    EventRow,
    EventStream,
    KIND_READ,
    KIND_WRITE,
    NO_AUX,
    merge_streams,
    pack_rows,
)


# ---------------------------------------------------------------------------
# Pareto-bursty interarrivals
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ParetoBurstConfig:
    """Parameters of the bursty-arrival workload."""

    #: Expected simulated span in days (heavy tails may overshoot slightly).
    days: float = 1.0
    #: Average number of events (reads + writes) per user per day.
    events_per_user_per_day: float = 5.0
    #: Fraction of events that are reads.
    read_fraction: float = 0.8
    #: Pareto shape of the interarrival gaps; must exceed 1 so the mean gap
    #: exists.  Values close to 1 give extreme burstiness.
    shape: float = 1.5
    seed: int = 7

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise WorkloadError("days must be positive")
        if self.events_per_user_per_day <= 0:
            raise WorkloadError("events_per_user_per_day must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise WorkloadError("read_fraction must lie in [0, 1]")
        if self.shape <= 1.0:
            raise WorkloadError("shape must exceed 1 (finite mean interarrival)")


class ParetoBurstWorkloadGenerator:
    """Degree-weighted workload with Pareto-distributed interarrival gaps."""

    def __init__(self, graph: SocialGraph, config: ParetoBurstConfig | None = None) -> None:
        self.graph = graph
        self.config = config or ParetoBurstConfig()

    def total_events(self) -> int:
        """Number of events the stream will emit."""
        config = self.config
        return int(round(self.graph.num_users * config.events_per_user_per_day * config.days))

    def stream(self, chunk_size: int = CHUNK_EVENTS) -> EventStream:
        """The workload as a lazy, re-iterable chunked event stream."""
        return EventStream(lambda: self._chunks(chunk_size))

    def _chunks(self, chunk_size: int) -> Iterator[EventChunk]:
        config = self.config
        users = list(self.graph.users)
        total = self.total_events()
        if not users or total == 0:
            return iter(())

        weights = [
            1.0 + math.log1p(self.graph.in_degree(user) + self.graph.out_degree(user))
            for user in users
        ]
        cum_weights = list(accumulate(weights))
        duration = config.days * DAY
        # Pareto(shape) has mean shape/(shape-1); gaps are (draw - 1) * scale
        # with mean scale/(shape-1), so this scale spreads `total` events over
        # the requested span in expectation.
        scale = duration * (config.shape - 1.0) / total

        def rows() -> Iterator[EventRow]:
            rng = random.Random(f"{config.seed}:pareto")
            now = 0.0
            for _ in range(total):
                now += (rng.paretovariate(config.shape) - 1.0) * scale
                (user,) = rng.choices(users, cum_weights=cum_weights, k=1)
                kind = KIND_READ if rng.random() < config.read_fraction else KIND_WRITE
                yield (kind, now, user, NO_AUX)

        return pack_rows(rows(), chunk_size)

    def generate(self) -> RequestLog:
        """Materialise the stream into a classic object-list request log."""
        return self.stream().materialise()


# ---------------------------------------------------------------------------
# Celebrity read storms
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CelebrityStormConfig:
    """Parameters of the celebrity read-storm workload."""

    days: float = 1.0
    #: Number of top-audience users that trigger storms.
    celebrities: int = 3
    #: Storms each celebrity triggers over the whole span.
    storms_per_celebrity: int = 2
    #: Length of one storm window in seconds.
    storm_duration: float = 2 * HOUR
    #: Reads each follower issues during one storm window.
    reads_per_follower: float = 3.0
    #: Background events (reads + writes) per user per day.
    background_events_per_user_per_day: float = 2.0
    #: Fraction of background events that are reads.
    background_read_fraction: float = 0.8
    seed: int = 7

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise WorkloadError("days must be positive")
        if self.celebrities < 1:
            raise WorkloadError("at least one celebrity is required")
        if self.storms_per_celebrity < 1:
            raise WorkloadError("storms_per_celebrity must be positive")
        if self.storm_duration <= 0:
            raise WorkloadError("storm_duration must be positive")
        if self.reads_per_follower < 0:
            raise WorkloadError("reads_per_follower cannot be negative")
        if not 0.0 <= self.background_read_fraction < 1.0:
            raise WorkloadError("background_read_fraction must lie in [0, 1)")


class CelebrityReadStormGenerator:
    """Background traffic plus follower read storms on the hottest views.

    The combined stream is a k-way merge of the background stream with one
    small storm stream per celebrity, exercising the same chunk-level merge
    the flash-event pipeline uses.
    """

    def __init__(
        self, graph: SocialGraph, config: CelebrityStormConfig | None = None
    ) -> None:
        self.graph = graph
        self.config = config or CelebrityStormConfig()

    def celebrity_users(self) -> list[int]:
        """The ``celebrities`` users with the largest audiences."""
        ranked = sorted(self.graph.users, key=self.graph.in_degree, reverse=True)
        return ranked[: self.config.celebrities]

    def storm_windows(self, celebrity: int) -> list[float]:
        """Deterministic storm start times for one celebrity."""
        config = self.config
        rng = random.Random(f"{config.seed}:celebrity:{celebrity}:windows")
        duration = config.days * DAY
        latest = max(0.0, duration - config.storm_duration)
        return sorted(rng.uniform(0.0, latest) for _ in range(config.storms_per_celebrity))

    def _storm_stream(self, celebrity: int) -> EventStream:
        """One celebrity's storms (small, eagerly built and sorted)."""
        config = self.config
        rng = random.Random(f"{config.seed}:celebrity:{celebrity}:reads")
        rows: list[EventRow] = []
        followers = sorted(self.graph.followers(celebrity))
        for start in self.storm_windows(celebrity):
            end = start + config.storm_duration
            # The celebrity posts at the window start; the pile-on follows.
            rows.append((KIND_WRITE, start, celebrity, NO_AUX))
            for follower in followers:
                for _ in range(int(round(config.reads_per_follower))):
                    rows.append((KIND_READ, rng.uniform(start, end), follower, NO_AUX))
        rows.sort(key=lambda row: row[1])
        return EventStream.from_rows(rows)

    def _background(self) -> EventStream:
        """Evenly-spread background traffic (reuses the synthetic windows)."""
        from .synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator

        config = self.config
        total_per_user = config.background_events_per_user_per_day
        read_fraction = config.background_read_fraction
        writes = total_per_user * (1.0 - read_fraction)
        ratio = read_fraction / (1.0 - read_fraction)
        return SyntheticWorkloadGenerator(
            self.graph,
            SyntheticWorkloadConfig(
                days=config.days,
                writes_per_user_per_day=writes,
                read_write_ratio=ratio,
                seed=config.seed,
            ),
        ).stream()

    def stream(self, chunk_size: int = CHUNK_EVENTS) -> EventStream:
        """The combined workload (background merged with every storm)."""
        if not self.graph.users:
            return EventStream.empty()
        storms = [self._storm_stream(user) for user in self.celebrity_users()]
        return merge_streams(self._background(), *storms, chunk_size=chunk_size)

    def generate(self) -> RequestLog:
        """Materialise the stream into a classic object-list request log."""
        return self.stream().materialise()


__all__ = [
    "CelebrityReadStormGenerator",
    "CelebrityStormConfig",
    "ParetoBurstConfig",
    "ParetoBurstWorkloadGenerator",
]
