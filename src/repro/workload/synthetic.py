"""Synthetic request-log generator (paper section 4.2, "Synthetic logs").

The generator follows the paper's assumptions:

* read and write activity of a user is proportional to the logarithm of her
  in- and out-degrees (Huberman et al.);
* the system sees roughly four times more reads than writes
  (Silberstein et al.);
* each user issues on average one write request per day;
* requests are evenly distributed over time (low variance), which lets
  DynaSoRe estimate read and write rates accurately.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..constants import DAY, SYNTHETIC_READ_WRITE_RATIO
from ..exceptions import WorkloadError
from ..socialgraph.graph import SocialGraph
from .requests import ReadRequest, RequestLog, WriteRequest


@dataclass(frozen=True)
class SyntheticWorkloadConfig:
    """Parameters of the synthetic workload."""

    #: Simulated duration in days.
    days: float = 1.0
    #: Average number of writes each user issues per day.
    writes_per_user_per_day: float = 1.0
    #: Global ratio of reads to writes.
    read_write_ratio: float = SYNTHETIC_READ_WRITE_RATIO
    #: Random seed.
    seed: int = 7

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise WorkloadError("days must be positive")
        if self.writes_per_user_per_day < 0:
            raise WorkloadError("writes_per_user_per_day cannot be negative")
        if self.read_write_ratio < 0:
            raise WorkloadError("read_write_ratio cannot be negative")


class SyntheticWorkloadGenerator:
    """Generates evenly-spread, degree-driven request logs."""

    def __init__(self, graph: SocialGraph, config: SyntheticWorkloadConfig | None = None) -> None:
        self.graph = graph
        self.config = config or SyntheticWorkloadConfig()

    # ------------------------------------------------------------- rates
    def write_weights(self) -> dict[int, float]:
        """Per-user write propensity, proportional to log(1 + out-degree).

        Producers with more followers tend to post more (Huberman et al.); we
        use the out-degree of the *follower graph transpose*, i.e. the user's
        audience size (in-degree), as the popularity proxy, mixed with her
        own out-degree so lurkers still write occasionally.
        """
        weights = {}
        for user in self.graph.users:
            audience = self.graph.in_degree(user)
            activity = self.graph.out_degree(user)
            weights[user] = 1.0 + math.log1p(audience) + 0.5 * math.log1p(activity)
        return weights

    def read_weights(self) -> dict[int, float]:
        """Per-user read propensity, proportional to log(1 + out-degree)."""
        weights = {}
        for user in self.graph.users:
            following = self.graph.out_degree(user)
            weights[user] = 1.0 + math.log1p(following)
        return weights

    # ---------------------------------------------------------------- logs
    def generate(self) -> RequestLog:
        """Generate the request log."""
        config = self.config
        rng = random.Random(config.seed)
        users = self.graph.users
        if not users:
            return RequestLog()

        duration = config.days * DAY
        total_writes = int(round(len(users) * config.writes_per_user_per_day * config.days))
        total_reads = int(round(total_writes * config.read_write_ratio))

        write_weights = self.write_weights()
        read_weights = self.read_weights()

        events: list[tuple[float, bool, int]] = []  # (time, is_read, user)
        events.extend(
            (rng.uniform(0.0, duration), False, user)
            for user in _weighted_choices(users, write_weights, total_writes, rng)
        )
        events.extend(
            (rng.uniform(0.0, duration), True, user)
            for user in _weighted_choices(users, read_weights, total_reads, rng)
        )
        events.sort(key=lambda item: item[0])

        log = RequestLog()
        for timestamp, is_read, user in events:
            if is_read:
                log.append(ReadRequest(timestamp=timestamp, user=user))
            else:
                log.append(WriteRequest(timestamp=timestamp, user=user))
        return log


def _weighted_choices(
    users: tuple[int, ...],
    weights: dict[int, float],
    count: int,
    rng: random.Random,
) -> list[int]:
    """Draw ``count`` users proportionally to their weights."""
    if count <= 0 or not users:
        return []
    weight_list = [weights[user] for user in users]
    return rng.choices(list(users), weights=weight_list, k=count)


__all__ = ["SyntheticWorkloadConfig", "SyntheticWorkloadGenerator"]
