"""Synthetic request-log generator (paper section 4.2, "Synthetic logs").

The generator follows the paper's assumptions:

* read and write activity of a user is proportional to the logarithm of her
  in- and out-degrees (Huberman et al.);
* the system sees roughly four times more reads than writes
  (Silberstein et al.);
* each user issues on average one write request per day;
* requests are evenly distributed over time (low variance), which lets
  DynaSoRe estimate read and write rates accurately.

Generation is *stream-native*: events are produced lazily in fixed time
windows (one generator window is a few simulated hours) and packed into the
columnar chunks of :mod:`repro.workload.stream`.  Randomness is drawn from
one dedicated ``random.Random`` per model (writes, reads), each consumed in
window order — never per chunk — so the emitted events are byte-identical
regardless of the chunk size used to consume the stream, and identical to
what :meth:`SyntheticWorkloadGenerator.generate` materialises.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterator
from dataclasses import dataclass
from itertools import accumulate

from ..constants import DAY, HOUR, SYNTHETIC_READ_WRITE_RATIO
from ..exceptions import WorkloadError
from ..socialgraph.graph import SocialGraph
from .requests import RequestLog
from .stream import (
    CHUNK_EVENTS,
    EventChunk,
    EventStream,
    KIND_READ,
    KIND_WRITE,
    NO_AUX,
    allocate_proportionally,
    pack_rows,
)

#: Width of one generation window.  Events are drawn and sorted per window,
#: so the window — a fixed property of the generator, independent of chunk
#: size and consumption pattern — is the unit of seed stability.
GENERATION_WINDOW = 6 * HOUR


@dataclass(frozen=True)
class SyntheticWorkloadConfig:
    """Parameters of the synthetic workload."""

    #: Simulated duration in days.
    days: float = 1.0
    #: Average number of writes each user issues per day.
    writes_per_user_per_day: float = 1.0
    #: Global ratio of reads to writes.
    read_write_ratio: float = SYNTHETIC_READ_WRITE_RATIO
    #: Random seed.
    seed: int = 7

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise WorkloadError("days must be positive")
        if self.writes_per_user_per_day < 0:
            raise WorkloadError("writes_per_user_per_day cannot be negative")
        if self.read_write_ratio < 0:
            raise WorkloadError("read_write_ratio cannot be negative")


class SyntheticWorkloadGenerator:
    """Generates evenly-spread, degree-driven request streams."""

    def __init__(self, graph: SocialGraph, config: SyntheticWorkloadConfig | None = None) -> None:
        self.graph = graph
        self.config = config or SyntheticWorkloadConfig()

    # ------------------------------------------------------------- rates
    def write_weights(self) -> dict[int, float]:
        """Per-user write propensity, proportional to log(1 + out-degree).

        Producers with more followers tend to post more (Huberman et al.); we
        use the out-degree of the *follower graph transpose*, i.e. the user's
        audience size (in-degree), as the popularity proxy, mixed with her
        own out-degree so lurkers still write occasionally.
        """
        weights = {}
        for user in self.graph.users:
            audience = self.graph.in_degree(user)
            activity = self.graph.out_degree(user)
            weights[user] = 1.0 + math.log1p(audience) + 0.5 * math.log1p(activity)
        return weights

    def read_weights(self) -> dict[int, float]:
        """Per-user read propensity, proportional to log(1 + out-degree)."""
        weights = {}
        for user in self.graph.users:
            following = self.graph.out_degree(user)
            weights[user] = 1.0 + math.log1p(following)
        return weights

    # --------------------------------------------------------------- streams
    def stream(self, chunk_size: int = CHUNK_EVENTS) -> EventStream:
        """The workload as a lazy, re-iterable chunked event stream."""
        return EventStream(lambda: self._chunks(chunk_size))

    def _chunks(self, chunk_size: int) -> Iterator[EventChunk]:
        config = self.config
        users = self.graph.users
        if not users:
            return iter(())

        duration = config.days * DAY
        total_writes = int(round(len(users) * config.writes_per_user_per_day * config.days))
        total_reads = int(round(total_writes * config.read_write_ratio))
        windows = max(1, math.ceil(duration / GENERATION_WINDOW))
        # Budgets are proportional to window *width*, so a fractional last
        # window carries proportionally fewer events and the event rate
        # stays even across the whole span (the generator's contract).
        widths = [
            min(duration, (window + 1) * GENERATION_WINDOW) - window * GENERATION_WINDOW
            for window in range(windows)
        ]
        writes_per_window = allocate_proportionally(total_writes, widths)
        reads_per_window = allocate_proportionally(total_reads, widths)

        user_list = list(users)
        write_weights = self.write_weights()
        read_weights = self.read_weights()
        cum_write_weights = list(accumulate(write_weights[u] for u in user_list))
        cum_read_weights = list(accumulate(read_weights[u] for u in user_list))
        # One RNG per model, consumed strictly in window order: chunking can
        # never perturb the draws.
        write_rng = random.Random(f"{config.seed}:synthetic:writes")
        read_rng = random.Random(f"{config.seed}:synthetic:reads")

        def rows():
            for window in range(windows):
                start = window * GENERATION_WINDOW
                end = min(start + GENERATION_WINDOW, duration)
                events: list[tuple[float, int, int]] = []
                writers = write_rng.choices(
                    user_list, cum_weights=cum_write_weights, k=writes_per_window[window]
                )
                events.extend(
                    (write_rng.uniform(start, end), KIND_WRITE, user) for user in writers
                )
                readers = read_rng.choices(
                    user_list, cum_weights=cum_read_weights, k=reads_per_window[window]
                )
                events.extend(
                    (read_rng.uniform(start, end), KIND_READ, user) for user in readers
                )
                events.sort(key=lambda item: item[0])
                for timestamp, kind, user in events:
                    yield (kind, timestamp, user, NO_AUX)

        return pack_rows(rows(), chunk_size)

    # ---------------------------------------------------------------- logs
    def generate(self) -> RequestLog:
        """Materialise the stream into a classic object-list request log."""
        return self.stream().materialise()


__all__ = [
    "GENERATION_WINDOW",
    "SyntheticWorkloadConfig",
    "SyntheticWorkloadGenerator",
]
