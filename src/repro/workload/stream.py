"""Chunked, columnar event streams (the workload data path).

The paper's real workload is a two-week trace with ~27M events; holding one
frozen dataclass per event makes a paper-scale run allocate tens of millions
of heap objects before the simulator replays the first message.  This module
replaces the materialised object list with a *struct-of-arrays* pipeline:

* :class:`EventChunk` — a fixed batch (~64k events) of four typed arrays
  (kind ``u8``, timestamp ``f64``, user ``u32``, aux ``i32``), roughly 17
  bytes per event instead of an object graph;
* :class:`EventStream` — a re-iterable, lazily produced sequence of chunks.
  A stream wraps a chunk *factory*, so iterating twice regenerates the same
  chunks deterministically (generators re-seed their RNGs per iteration);
* :func:`merge_streams` — a stable k-way timestamp merge, used to combine a
  base workload with flash events, read storms and scenario fragments
  without sorting the union in memory.

Event rows are ``(kind, timestamp, user, aux)``.  For reads and writes
``aux`` is :data:`NO_AUX`; for edge events ``user`` is the follower and
``aux`` the followee.  The object model (:mod:`repro.workload.requests`)
stays as a thin adapter: :meth:`EventStream.materialise` builds a classic
:class:`RequestLog` and :func:`as_stream` wraps one back into chunks.
"""

from __future__ import annotations

import heapq
from array import array
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass

from ..constants import DAY
from ..exceptions import WorkloadError
from .requests import EdgeAdded, EdgeRemoved, ReadRequest, Request, RequestLog, WriteRequest

#: Event kind codes (the ``u8`` column).
KIND_READ = 0
KIND_WRITE = 1
KIND_EDGE_ADD = 2
KIND_EDGE_REMOVE = 3

#: ``aux`` value of events that carry no second user (reads and writes).
NO_AUX = -1

#: Default number of events per chunk.  64k events keep a chunk around one
#: megabyte while amortising per-chunk Python overhead over many events.
CHUNK_EVENTS = 65536

#: An event row: ``(kind, timestamp, user, aux)``.
EventRow = tuple[int, float, int, int]


class EventChunk:
    """A struct-of-arrays batch of time-ordered events."""

    __slots__ = ("kinds", "timestamps", "users", "aux")

    def __init__(
        self,
        kinds: array | None = None,
        timestamps: array | None = None,
        users: array | None = None,
        aux: array | None = None,
    ) -> None:
        self.kinds = kinds if kinds is not None else array("B")
        self.timestamps = timestamps if timestamps is not None else array("d")
        self.users = users if users is not None else array("I")
        self.aux = aux if aux is not None else array("i")

    def __len__(self) -> int:
        return len(self.kinds)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventChunk):
            return NotImplemented
        return (
            self.kinds == other.kinds
            and self.timestamps == other.timestamps
            and self.users == other.users
            and self.aux == other.aux
        )

    def append(self, kind: int, timestamp: float, user: int, aux: int = NO_AUX) -> None:
        """Append one event row (callers must keep rows time ordered)."""
        self.kinds.append(kind)
        self.timestamps.append(timestamp)
        self.users.append(user)
        self.aux.append(aux)

    def rows(self) -> Iterator[EventRow]:
        """Iterate the chunk as ``(kind, timestamp, user, aux)`` tuples."""
        return zip(self.kinds, self.timestamps, self.users, self.aux)

    def requests(self) -> Iterator[Request]:
        """Iterate the chunk as request objects (the adapter path)."""
        for kind, timestamp, user, aux in self.rows():
            yield row_to_request(kind, timestamp, user, aux)

    def validate(self) -> None:
        """Raise when the chunk is internally inconsistent or unordered."""
        lengths = {len(self.kinds), len(self.timestamps), len(self.users), len(self.aux)}
        if len(lengths) != 1:
            raise WorkloadError("event chunk columns have diverging lengths")
        timestamps = self.timestamps
        for i in range(1, len(timestamps)):
            if timestamps[i] < timestamps[i - 1]:
                raise WorkloadError("event chunk is not sorted by timestamp")


@dataclass(frozen=True)
class StreamStats:
    """One-pass summary of an event stream."""

    events: int
    reads: int
    writes: int
    mutations: int
    first_timestamp: float
    last_timestamp: float

    @property
    def duration(self) -> float:
        """Time span covered by the stream (0 for empty streams)."""
        if self.events == 0:
            return 0.0
        return self.last_timestamp - self.first_timestamp


class EventStream:
    """A re-iterable, chunked stream of time-ordered events.

    Wraps a *factory* returning a fresh chunk iterator, so the stream can be
    consumed several times (each consumption regenerates the same chunks —
    factories must derive all randomness from fixed seeds).
    """

    def __init__(self, source: Callable[[], Iterator[EventChunk]]) -> None:
        self._source = source

    # ---------------------------------------------------------------- access
    def chunks(self) -> Iterator[EventChunk]:
        """Iterate the stream's chunks (a fresh pass each call)."""
        return self._source()

    def rows(self) -> Iterator[EventRow]:
        """Iterate events as ``(kind, timestamp, user, aux)`` rows."""
        for chunk in self.chunks():
            yield from chunk.rows()

    def __iter__(self) -> Iterator[Request]:
        """Iterate events as request objects (convenience adapter)."""
        for chunk in self.chunks():
            yield from chunk.requests()

    # ------------------------------------------------------------- summaries
    def stats(self) -> StreamStats:
        """Count events per kind and record the covered time span."""
        events = reads = writes = mutations = 0
        first = 0.0
        last = 0.0
        for chunk in self.chunks():
            n = len(chunk)
            if n == 0:
                continue
            if events == 0:
                first = chunk.timestamps[0]
            last = chunk.timestamps[n - 1]
            events += n
            for kind in chunk.kinds:
                if kind == KIND_READ:
                    reads += 1
                elif kind == KIND_WRITE:
                    writes += 1
                else:
                    mutations += 1
        return StreamStats(
            events=events,
            reads=reads,
            writes=writes,
            mutations=mutations,
            first_timestamp=first,
            last_timestamp=last,
        )

    # -------------------------------------------------------------- adapters
    def materialise(self) -> RequestLog:
        """Build the classic object-list :class:`RequestLog` (compat path)."""
        log = RequestLog()
        log.requests = [request for request in self]
        return log

    @staticmethod
    def from_chunks(chunks: Sequence[EventChunk]) -> "EventStream":
        """Stream over already-built chunks (re-iterable, no laziness)."""
        held = tuple(chunks)
        return EventStream(lambda: iter(held))

    @staticmethod
    def from_rows(
        rows: Iterable[EventRow], chunk_size: int = CHUNK_EVENTS
    ) -> "EventStream":
        """Eagerly pack rows into chunks (for small, already-sorted sets)."""
        return EventStream.from_chunks(list(pack_rows(rows, chunk_size)))

    @staticmethod
    def empty() -> "EventStream":
        return EventStream.from_chunks(())


# ---------------------------------------------------------------------------
# Row <-> request adapters
# ---------------------------------------------------------------------------
def request_to_row(request: Request) -> EventRow:
    """Encode a request object as an event row."""
    kind = type(request)
    if kind is ReadRequest:
        return (KIND_READ, request.timestamp, request.user, NO_AUX)
    if kind is WriteRequest:
        return (KIND_WRITE, request.timestamp, request.user, NO_AUX)
    if kind is EdgeAdded:
        return (KIND_EDGE_ADD, request.timestamp, request.follower, request.followee)
    if kind is EdgeRemoved:
        return (KIND_EDGE_REMOVE, request.timestamp, request.follower, request.followee)
    raise WorkloadError(f"unknown request type {kind.__name__}")


def row_to_request(kind: int, timestamp: float, user: int, aux: int) -> Request:
    """Decode an event row into a request object."""
    if kind == KIND_READ:
        return ReadRequest(timestamp, user)
    if kind == KIND_WRITE:
        return WriteRequest(timestamp, user)
    if kind == KIND_EDGE_ADD:
        return EdgeAdded(timestamp, user, aux)
    if kind == KIND_EDGE_REMOVE:
        return EdgeRemoved(timestamp, user, aux)
    raise WorkloadError(f"unknown event kind {kind}")


def pack_rows(
    rows: Iterable[EventRow], chunk_size: int = CHUNK_EVENTS
) -> Iterator[EventChunk]:
    """Pack a row iterator into chunks of at most ``chunk_size`` events."""
    if chunk_size < 1:
        raise WorkloadError("chunk_size must be at least 1")
    chunk = EventChunk()
    append = chunk.append
    for kind, timestamp, user, aux in rows:
        append(kind, timestamp, user, aux)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = EventChunk()
            append = chunk.append
    if len(chunk):
        yield chunk


#: For every event kind, the other kinds (the run-boundary search set).
_OTHER_KINDS: dict[int, tuple[int, ...]] = {
    kind: tuple(
        other
        for other in (KIND_READ, KIND_WRITE, KIND_EDGE_ADD, KIND_EDGE_REMOVE)
        if other != kind
    )
    for kind in (KIND_READ, KIND_WRITE, KIND_EDGE_ADD, KIND_EDGE_REMOVE)
}


def kind_run_end(kinds: bytes, start: int, end: int) -> int:
    """End of the homogeneous kind run beginning at ``kinds[start]``.

    Returns the smallest index in ``(start, end]`` at which the event kind
    changes (``end`` when the whole range is homogeneous).  ``kinds`` is a
    chunk's kind column as ``bytes`` (``chunk.kinds.tobytes()``), so the
    scan runs at C speed — the batched replay loop segments every chunk
    into dispatchable runs with three ``bytes.find`` calls per run instead
    of a per-event Python comparison.
    """
    for other in _OTHER_KINDS[kinds[start]]:
        position = kinds.find(other, start + 1, end)
        if position >= 0:
            end = position
    return end


def request_run_end(kinds: bytes, start: int, end: int) -> int:
    """End of the request run (reads and writes) beginning at ``start``.

    Like :func:`kind_run_end` but reads and writes form **one** run — only
    edge-mutation events break it.  Request streams interleave reads and
    writes tightly (a read-heavy trace still sprinkles writes every few
    events), so request runs are orders of magnitude longer than
    single-kind runs; the execution kernels branch per event on the kind
    byte instead of paying a dispatch per kind flip.
    """
    position = kinds.find(KIND_EDGE_ADD, start + 1, end)
    if position >= 0:
        end = position
    position = kinds.find(KIND_EDGE_REMOVE, start + 1, end)
    if position >= 0:
        end = position
    return end


def as_stream(events: "RequestLog | EventStream") -> EventStream:
    """View a request log (or pass an existing stream through) as a stream."""
    if isinstance(events, EventStream):
        return events
    log = events

    def _chunks() -> Iterator[EventChunk]:
        return pack_rows(request_to_row(request) for request in log.requests)

    return EventStream(_chunks)


# ---------------------------------------------------------------------------
# Merging and chunk-level queries
# ---------------------------------------------------------------------------
def merge_streams(
    *streams: EventStream, chunk_size: int = CHUNK_EVENTS
) -> EventStream:
    """Stable k-way merge of time-ordered streams.

    Ties keep the events of earlier arguments first (matching the stable
    sort the object-list path used), and the merge holds only one chunk per
    input in flight — merging a 27M-event base with a small mutation stream
    never materialises either side.
    """
    sources = tuple(streams)
    if not sources:
        return EventStream.empty()
    if len(sources) == 1:
        return sources[0]

    def _chunks() -> Iterator[EventChunk]:
        iterators = [stream.rows() for stream in sources]
        merged = heapq.merge(*iterators, key=lambda row: row[1])
        return pack_rows(merged, chunk_size)

    return EventStream(_chunks)


def allocate_proportionally(total: int, weights: list[float]) -> list[int]:
    """Integer shares of ``total`` proportional to ``weights`` (exact sum).

    Uses largest-remainder rounding, so the shares always add up to
    ``total`` and track the weights as closely as integers allow.  The
    stream-native generators allocate per-window event budgets with this
    (weights = window widths x load factors), which keeps event *rates*
    even across windows of different lengths.
    """
    if not weights or total <= 0:
        return [0] * len(weights)
    scale = sum(weights)
    if scale <= 0:
        shares = [0] * len(weights)
        shares[0] = total
        return shares
    exact = [total * weight / scale for weight in weights]
    shares = [int(value) for value in exact]
    shortfall = total - sum(shares)
    by_remainder = sorted(
        range(len(weights)), key=lambda index: exact[index] - shares[index], reverse=True
    )
    for index in by_remainder[:shortfall]:
        shares[index] += 1
    return shares


def events_per_day(stream: EventStream) -> dict[int, dict[str, int]]:
    """Read/write counts per simulated day, computed chunk-wise.

    Column-level analogue of :meth:`RequestLog.requests_per_day`, used by
    the Figure 2 experiment without materialising the trace.
    """
    days: dict[int, dict[str, int]] = {}
    for chunk in stream.chunks():
        kinds = chunk.kinds
        timestamps = chunk.timestamps
        for i in range(len(kinds)):
            kind = kinds[i]
            if kind == KIND_READ:
                field = "reads"
            elif kind == KIND_WRITE:
                field = "writes"
            else:
                continue
            day = int(timestamps[i] // DAY)
            bucket = days.get(day)
            if bucket is None:
                bucket = days.setdefault(day, {"reads": 0, "writes": 0})
            bucket[field] += 1
    return days


__all__ = [
    "CHUNK_EVENTS",
    "EventChunk",
    "EventRow",
    "EventStream",
    "KIND_EDGE_ADD",
    "KIND_EDGE_REMOVE",
    "KIND_READ",
    "KIND_WRITE",
    "NO_AUX",
    "StreamStats",
    "allocate_proportionally",
    "as_stream",
    "events_per_day",
    "kind_run_end",
    "request_run_end",
    "merge_streams",
    "pack_rows",
    "request_to_row",
    "row_to_request",
]
