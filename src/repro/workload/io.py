"""Binary trace files for chunked event streams.

Generated workloads can be saved once and replayed many times: a trace file
stores the columnar chunks of an :class:`~repro.workload.stream.EventStream`
verbatim, so reading is a sequence of bulk ``frombytes`` fills with no
per-event decoding.  Files are memory-mapped on read and consumed one chunk
at a time, keeping a paper-scale replay within a small, constant workload
memory budget.

Format (header integers little-endian; column payloads are raw native-order
array bytes, recorded by a byte-order flag and checked on read):

* 24-byte header — magic ``REPROEV1``, ``u16`` version, ``u16`` flags
  (bit 0: writer was little-endian), four ``u8`` column item sizes
  (kind, timestamp, user, aux), ``u64`` total event count;
* a sequence of chunk records — ``u32`` event count ``n`` followed by the
  raw bytes of the four columns (``n`` kinds, ``n`` timestamps, ``n``
  users, ``n`` aux values).

:func:`trace_content_hash` fingerprints a file so a workload loaded from
disk can be content-addressed into the experiment runtime's result cache
(:class:`~repro.runtime.executor.ResultCache`).
"""

from __future__ import annotations

import hashlib
import mmap
import os
import struct
import sys
from array import array
from collections.abc import Iterator
from pathlib import Path

from ..exceptions import WorkloadError
from .requests import RequestLog
from .stream import EventChunk, EventStream, as_stream

#: File magic; the trailing digit is the format generation.
TRACE_MAGIC = b"REPROEV1"

#: Current format version (bump on incompatible layout changes).
TRACE_VERSION = 1

_HEADER = struct.Struct("<8sHH4BQ")
_CHUNK_HEADER = struct.Struct("<I")

#: Flag bit recording the writer's byte order (set = little-endian).
#: Column payloads are raw ``array.tobytes()`` in *native* order, so a
#: trace must be read on a host with the same endianness — the flag turns
#: a silently byte-swapped workload into a clean error.
_FLAG_LITTLE_ENDIAN = 1


def _host_flags() -> int:
    return _FLAG_LITTLE_ENDIAN if sys.byteorder == "little" else 0

#: Column item sizes this build writes (array typecodes B, d, I, i).
_ITEMSIZES = (
    array("B").itemsize,
    array("d").itemsize,
    array("I").itemsize,
    array("i").itemsize,
)


def write_trace(path: str | os.PathLike, events: "EventStream | RequestLog") -> int:
    """Write a stream (or a request log) to a binary trace file.

    Chunks are validated for time order as they are written — a trace file
    is always a well-formed, replayable workload.  Returns the number of
    events written.
    """
    stream = as_stream(events)
    total = 0
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    last_timestamp: float | None = None
    with tmp.open("wb") as handle:
        handle.write(
            _HEADER.pack(TRACE_MAGIC, TRACE_VERSION, _host_flags(), *_ITEMSIZES, 0)
        )
        for chunk in stream.chunks():
            n = len(chunk)
            if n == 0:
                continue
            chunk.validate()
            if last_timestamp is not None and chunk.timestamps[0] < last_timestamp:
                raise WorkloadError("event stream is not sorted across chunks")
            last_timestamp = chunk.timestamps[n - 1]
            handle.write(_CHUNK_HEADER.pack(n))
            handle.write(chunk.kinds.tobytes())
            handle.write(chunk.timestamps.tobytes())
            handle.write(chunk.users.tobytes())
            handle.write(chunk.aux.tobytes())
            total += n
        # Seal the header with the final event count.
        handle.seek(0)
        handle.write(
            _HEADER.pack(TRACE_MAGIC, TRACE_VERSION, _host_flags(), *_ITEMSIZES, total)
        )
    os.replace(tmp, target)
    return total


def _read_header(view: memoryview, path: Path) -> int:
    """Validate the header; returns the recorded event count."""
    if len(view) < _HEADER.size:
        raise WorkloadError(f"trace file {path} is truncated (no header)")
    magic, version, flags, *itemsizes, events = _HEADER.unpack_from(view, 0)
    if magic != TRACE_MAGIC:
        raise WorkloadError(f"{path} is not a trace file (bad magic {magic!r})")
    if version != TRACE_VERSION:
        raise WorkloadError(
            f"trace file {path} has unsupported version {version} "
            f"(this build reads version {TRACE_VERSION})"
        )
    if flags & _FLAG_LITTLE_ENDIAN != _host_flags():
        raise WorkloadError(
            f"trace file {path} was written on a host with different byte "
            f"order; its columns cannot be decoded on this machine"
        )
    if tuple(itemsizes) != _ITEMSIZES:
        raise WorkloadError(
            f"trace file {path} was written with incompatible column sizes "
            f"{tuple(itemsizes)} (this platform uses {_ITEMSIZES})"
        )
    return events


def read_trace(path: str | os.PathLike) -> EventStream:
    """Open a trace file as a lazy, re-iterable event stream.

    The header is validated eagerly (so a corrupt file fails at open time,
    not mid-replay); chunk payloads are memory-mapped and copied into typed
    arrays one chunk at a time per iteration.
    """
    source = Path(path)
    # Eager validation: read and check the header once up front.
    with source.open("rb") as handle:
        _read_header(memoryview(handle.read(_HEADER.size)), source)

    def _chunks() -> Iterator[EventChunk]:
        with source.open("rb") as handle:
            with mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ) as mapped:
                view = memoryview(mapped)
                try:
                    expected = _read_header(view, source)
                    offset = _HEADER.size
                    seen = 0
                    size = len(view)
                    while offset < size:
                        if size - offset < _CHUNK_HEADER.size:
                            raise WorkloadError(
                                f"trace file {source} is truncated mid chunk header"
                            )
                        (n,) = _CHUNK_HEADER.unpack_from(view, offset)
                        offset += _CHUNK_HEADER.size
                        payload = n * sum(_ITEMSIZES)
                        if size - offset < payload:
                            raise WorkloadError(
                                f"trace file {source} is truncated mid chunk payload"
                            )
                        chunk = EventChunk()
                        for column, itemsize in zip(
                            (chunk.kinds, chunk.timestamps, chunk.users, chunk.aux),
                            _ITEMSIZES,
                        ):
                            width = n * itemsize
                            column.frombytes(view[offset : offset + width])
                            offset += width
                        seen += n
                        yield chunk
                    if seen != expected:
                        raise WorkloadError(
                            f"trace file {source} records {expected} events "
                            f"but contains {seen}"
                        )
                finally:
                    view.release()

    return EventStream(_chunks)


def trace_content_hash(path: str | os.PathLike) -> str:
    """SHA-256 of a trace file's bytes (the result-cache content address)."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


__all__ = [
    "TRACE_MAGIC",
    "TRACE_VERSION",
    "read_trace",
    "trace_content_hash",
    "write_trace",
]
