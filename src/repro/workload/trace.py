"""Yahoo! News Activity style trace generator (paper section 4.2).

The paper's real workload is a proprietary two-week sample of Yahoo! News
Activity: 2.5M users, 17M writes and 9.8M reads, i.e. a *write-heavy* trace
(most reads happened on Facebook and never reached the Yahoo! logs), with a
strong diurnal pattern and day-to-day variation (Figure 2).  The users of the
trace are mapped onto the Facebook social graph by activity/degree rank.

This module generates a synthetic trace with the same observable properties:

* configurable duration (default 14 days);
* write-heavy global ratio (defaults to 17:9.8);
* sinusoidal diurnal modulation plus per-day random variation, so traffic
  varies over time the way Figure 2 shows;
* heavy-tailed per-user activity mapped onto graph users by degree rank,
  reproducing the paper's rank-join between trace users and graph users.

Generation is stream-native and windowed by simulated *day*: the per-day
event budget is fixed up front (proportional to the day's load factor), and
each day's events are drawn from per-model RNGs consumed in day order — so
the chunk size used to consume the stream can never change the trace.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterator
from dataclasses import dataclass

from ..constants import DAY, HOUR
from ..exceptions import WorkloadError
from ..socialgraph.graph import SocialGraph
from .requests import RequestLog
from .stream import (
    CHUNK_EVENTS,
    EventChunk,
    EventStream,
    KIND_READ,
    KIND_WRITE,
    NO_AUX,
    allocate_proportionally,
    pack_rows,
)


@dataclass(frozen=True)
class NewsActivityTraceConfig:
    """Parameters of the Yahoo!-like trace."""

    days: float = 14.0
    #: Average number of writes per user over the whole trace.  The paper's
    #: trace has 17M writes for 2.5M users, i.e. 6.8 writes per user.
    writes_per_user: float = 6.8
    #: Ratio of reads to writes (9.8M / 17M in the paper's trace).
    read_write_ratio: float = 9.8 / 17.0
    #: Fraction of users that participate in the trace (the paper keeps only
    #: users with at least one read and one write).
    active_fraction: float = 1.0
    #: Amplitude of the diurnal modulation (0 disables it).
    diurnal_amplitude: float = 0.6
    #: Standard deviation of the per-day multiplicative noise.
    daily_noise: float = 0.25
    #: Pareto shape of per-user activity (smaller = heavier tail).
    activity_shape: float = 1.3
    seed: int = 7

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise WorkloadError("days must be positive")
        if not 0.0 < self.active_fraction <= 1.0:
            raise WorkloadError("active_fraction must be in (0, 1]")
        if self.activity_shape <= 0:
            raise WorkloadError("activity_shape must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise WorkloadError("diurnal_amplitude must be in [0, 1)")


class NewsActivityTraceGenerator:
    """Generates a write-heavy, diurnally-modulated request trace."""

    def __init__(
        self, graph: SocialGraph, config: NewsActivityTraceConfig | None = None
    ) -> None:
        self.graph = graph
        self.config = config or NewsActivityTraceConfig()

    # --------------------------------------------------------------- mapping
    def ranked_users(self) -> list[int]:
        """Graph users ordered by decreasing friend count.

        The paper ranks trace users by number of writes and graph users by
        number of friends and joins them by rank; we reproduce the same
        rank-based mapping by handing the heaviest trace activity to the
        best-connected graph users.
        """
        return sorted(
            self.graph.users,
            key=lambda user: (self.graph.in_degree(user) + self.graph.out_degree(user)),
            reverse=True,
        )

    def activity_profile(self, rng: random.Random) -> dict[int, float]:
        """Heavy-tailed per-user activity weight mapped by rank."""
        ranked = self.ranked_users()
        active_count = max(1, int(len(ranked) * self.config.active_fraction))
        active = ranked[:active_count]
        draws = sorted(
            (rng.paretovariate(self.config.activity_shape) for _ in active), reverse=True
        )
        return {user: draw for user, draw in zip(active, draws)}

    # ------------------------------------------------------------------ time
    def _daily_rates(self, rng: random.Random) -> list[float]:
        """Per-day multiplicative factors (day-to-day variation of Figure 2)."""
        days = int(math.ceil(self.config.days))
        factors = []
        for day in range(days):
            noise = max(0.2, rng.gauss(1.0, self.config.daily_noise))
            weekend = 0.85 if day % 7 in (5, 6) else 1.0
            factors.append(noise * weekend)
        return factors

    def _draw_hour(self, rng: random.Random) -> float:
        """Draw an hour-of-day honouring the diurnal cycle."""
        amplitude = self.config.diurnal_amplitude
        # Rejection-sample the hour against the diurnal curve: peak in the
        # evening (hour 20), trough early morning (hour 4).
        while True:
            hour = rng.uniform(0.0, 24.0)
            intensity = 1.0 + amplitude * math.sin((hour - 8.0) / 24.0 * 2.0 * math.pi)
            if rng.uniform(0.0, 1.0 + amplitude) <= intensity:
                return hour

    # --------------------------------------------------------------- streams
    def stream(self, chunk_size: int = CHUNK_EVENTS) -> EventStream:
        """The trace as a lazy, re-iterable chunked event stream."""
        return EventStream(lambda: self._chunks(chunk_size))

    def _chunks(self, chunk_size: int) -> Iterator[EventChunk]:
        config = self.config
        users = self.graph.users
        if not users:
            return iter(())

        profile_rng = random.Random(f"{config.seed}:trace:profile")
        activity = self.activity_profile(profile_rng)
        active_users = list(activity)
        weights = [activity[user] for user in active_users]
        daily = self._daily_rates(profile_rng)

        total_writes = int(round(len(active_users) * config.writes_per_user))
        total_reads = int(round(total_writes * config.read_write_ratio))
        # Day budgets combine the day's load factor with its width, so a
        # fractional final day carries proportionally fewer events and the
        # event rate tracks the daily factors across the whole span.
        end_of_trace = config.days * DAY
        day_fractions = [
            (min(end_of_trace, (day + 1) * DAY) - day * DAY) / DAY
            for day in range(len(daily))
        ]
        day_weights = [
            factor * fraction for factor, fraction in zip(daily, day_fractions)
        ]
        writes_per_day = allocate_proportionally(total_writes, day_weights)
        reads_per_day = allocate_proportionally(total_reads, day_weights)

        write_rng = random.Random(f"{config.seed}:trace:writes")
        read_rng = random.Random(f"{config.seed}:trace:reads")

        def rows():
            for day in range(len(daily)):
                events: list[tuple[float, int, int]] = []
                for kind, rng, count in (
                    (KIND_WRITE, write_rng, writes_per_day[day]),
                    (KIND_READ, read_rng, reads_per_day[day]),
                ):
                    chosen = rng.choices(active_users, weights=weights, k=count)
                    for user in chosen:
                        # Full days always pass first try; a fractional
                        # final day resamples the diurnal draw until the
                        # timestamp falls inside the trace (bounded, so a
                        # sliver-width day can never spin forever).
                        for _ in range(100):
                            timestamp = day * DAY + self._draw_hour(rng) * HOUR
                            if timestamp < end_of_trace:
                                break
                        else:
                            timestamp = math.nextafter(end_of_trace, day * DAY)
                        events.append((timestamp, kind, user))
                events.sort(key=lambda item: item[0])
                for timestamp, kind, user in events:
                    yield (kind, timestamp, user, NO_AUX)

        return pack_rows(rows(), chunk_size)

    # ------------------------------------------------------------------ logs
    def generate(self) -> RequestLog:
        """Materialise the stream into a classic object-list request log."""
        return self.stream().materialise()


__all__ = [
    "NewsActivityTraceConfig",
    "NewsActivityTraceGenerator",
]
