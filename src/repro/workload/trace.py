"""Yahoo! News Activity style trace generator (paper section 4.2).

The paper's real workload is a proprietary two-week sample of Yahoo! News
Activity: 2.5M users, 17M writes and 9.8M reads, i.e. a *write-heavy* trace
(most reads happened on Facebook and never reached the Yahoo! logs), with a
strong diurnal pattern and day-to-day variation (Figure 2).  The users of the
trace are mapped onto the Facebook social graph by activity/degree rank.

This module generates a synthetic trace with the same observable properties:

* configurable duration (default 14 days);
* write-heavy global ratio (defaults to 17:9.8);
* sinusoidal diurnal modulation plus per-day random variation, so traffic
  varies over time the way Figure 2 shows;
* heavy-tailed per-user activity mapped onto graph users by degree rank,
  reproducing the paper's rank-join between trace users and graph users.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..constants import DAY, HOUR
from ..exceptions import WorkloadError
from ..socialgraph.graph import SocialGraph
from .requests import ReadRequest, RequestLog, WriteRequest


@dataclass(frozen=True)
class NewsActivityTraceConfig:
    """Parameters of the Yahoo!-like trace."""

    days: float = 14.0
    #: Average number of writes per user over the whole trace.  The paper's
    #: trace has 17M writes for 2.5M users, i.e. 6.8 writes per user.
    writes_per_user: float = 6.8
    #: Ratio of reads to writes (9.8M / 17M in the paper's trace).
    read_write_ratio: float = 9.8 / 17.0
    #: Fraction of users that participate in the trace (the paper keeps only
    #: users with at least one read and one write).
    active_fraction: float = 1.0
    #: Amplitude of the diurnal modulation (0 disables it).
    diurnal_amplitude: float = 0.6
    #: Standard deviation of the per-day multiplicative noise.
    daily_noise: float = 0.25
    #: Pareto shape of per-user activity (smaller = heavier tail).
    activity_shape: float = 1.3
    seed: int = 7

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise WorkloadError("days must be positive")
        if not 0.0 < self.active_fraction <= 1.0:
            raise WorkloadError("active_fraction must be in (0, 1]")
        if self.activity_shape <= 0:
            raise WorkloadError("activity_shape must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise WorkloadError("diurnal_amplitude must be in [0, 1)")


class NewsActivityTraceGenerator:
    """Generates a write-heavy, diurnally-modulated request trace."""

    def __init__(
        self, graph: SocialGraph, config: NewsActivityTraceConfig | None = None
    ) -> None:
        self.graph = graph
        self.config = config or NewsActivityTraceConfig()

    # --------------------------------------------------------------- mapping
    def ranked_users(self) -> list[int]:
        """Graph users ordered by decreasing friend count.

        The paper ranks trace users by number of writes and graph users by
        number of friends and joins them by rank; we reproduce the same
        rank-based mapping by handing the heaviest trace activity to the
        best-connected graph users.
        """
        return sorted(
            self.graph.users,
            key=lambda user: (self.graph.in_degree(user) + self.graph.out_degree(user)),
            reverse=True,
        )

    def activity_profile(self, rng: random.Random) -> dict[int, float]:
        """Heavy-tailed per-user activity weight mapped by rank."""
        ranked = self.ranked_users()
        active_count = max(1, int(len(ranked) * self.config.active_fraction))
        active = ranked[:active_count]
        draws = sorted(
            (rng.paretovariate(self.config.activity_shape) for _ in active), reverse=True
        )
        return {user: draw for user, draw in zip(active, draws)}

    # ------------------------------------------------------------------ time
    def _daily_rates(self, rng: random.Random) -> list[float]:
        """Per-day multiplicative factors (day-to-day variation of Figure 2)."""
        days = int(math.ceil(self.config.days))
        factors = []
        for day in range(days):
            noise = max(0.2, rng.gauss(1.0, self.config.daily_noise))
            weekend = 0.85 if day % 7 in (5, 6) else 1.0
            factors.append(noise * weekend)
        return factors

    def _draw_timestamp(self, rng: random.Random, daily: list[float]) -> float:
        """Draw a timestamp honouring daily factors and the diurnal cycle."""
        weights = daily[: int(math.ceil(self.config.days))]
        day = rng.choices(range(len(weights)), weights=weights, k=1)[0]
        # Rejection-sample the hour against the diurnal curve.
        amplitude = self.config.diurnal_amplitude
        while True:
            hour = rng.uniform(0.0, 24.0)
            # Peak in the evening (hour 20), trough early morning (hour 4).
            intensity = 1.0 + amplitude * math.sin((hour - 8.0) / 24.0 * 2.0 * math.pi)
            if rng.uniform(0.0, 1.0 + amplitude) <= intensity:
                break
        timestamp = day * DAY + hour * HOUR
        return min(timestamp, self.config.days * DAY - 1e-6)

    # ------------------------------------------------------------------ logs
    def generate(self) -> RequestLog:
        """Generate the trace."""
        config = self.config
        rng = random.Random(config.seed)
        users = self.graph.users
        if not users:
            return RequestLog()

        activity = self.activity_profile(rng)
        active_users = list(activity)
        weights = [activity[user] for user in active_users]

        total_writes = int(round(len(active_users) * config.writes_per_user))
        total_reads = int(round(total_writes * config.read_write_ratio))
        daily = self._daily_rates(rng)

        events: list[tuple[float, bool, int]] = []
        writers = rng.choices(active_users, weights=weights, k=total_writes)
        readers = rng.choices(active_users, weights=weights, k=total_reads)
        events.extend((self._draw_timestamp(rng, daily), False, user) for user in writers)
        events.extend((self._draw_timestamp(rng, daily), True, user) for user in readers)
        events.sort(key=lambda item: item[0])

        log = RequestLog()
        for timestamp, is_read, user in events:
            if is_read:
                log.append(ReadRequest(timestamp=timestamp, user=user))
            else:
                log.append(WriteRequest(timestamp=timestamp, user=user))
        return log


__all__ = ["NewsActivityTraceConfig", "NewsActivityTraceGenerator"]
