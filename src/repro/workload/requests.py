"""Request-log data model.

A request log is a time-ordered sequence of events the simulator replays:

* :class:`ReadRequest` — user ``u`` reads the views of the users she follows
  (the target list is resolved against the social graph at execution time, so
  graph mutations affect subsequent reads, as in the real system);
* :class:`WriteRequest` — user ``u`` produced an event, her view must be
  updated on every replica;
* :class:`EdgeAdded` / :class:`EdgeRemoved` — the social network evolved
  (used by the flash-event experiment and the dynamic-graph tests).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator

from ..exceptions import WorkloadError


@dataclass(frozen=True, slots=True)
class ReadRequest:
    """User ``user`` requests her feed (the views of everyone she follows)."""

    timestamp: float
    user: int


@dataclass(frozen=True, slots=True)
class WriteRequest:
    """User ``user`` produced an event; her view must be updated."""

    timestamp: float
    user: int


@dataclass(frozen=True, slots=True)
class EdgeAdded:
    """``follower`` started following ``followee``."""

    timestamp: float
    follower: int
    followee: int


@dataclass(frozen=True, slots=True)
class EdgeRemoved:
    """``follower`` stopped following ``followee``."""

    timestamp: float
    follower: int
    followee: int


Request = ReadRequest | WriteRequest | EdgeAdded | EdgeRemoved


@dataclass
class RequestLog:
    """A time-ordered sequence of requests plus summary statistics."""

    requests: list[Request] = field(default_factory=list)

    def append(self, request: Request) -> None:
        """Append a request (must not go back in time)."""
        if self.requests and request.timestamp < self.requests[-1].timestamp:
            raise WorkloadError("requests must be appended in non-decreasing time order")
        self.requests.append(request)

    def extend(self, requests: Iterable[Request]) -> None:
        """Append many requests (must collectively be time ordered)."""
        for request in requests:
            self.append(request)

    def merged_with(self, other: "RequestLog") -> "RequestLog":
        """Return a new log merging two logs by timestamp (stable).

        Logs built through :meth:`append` are always sorted, so this is a
        one-shot linear merge (ties keep ``self``'s requests first).  A
        hand-assigned unsorted log is detected by an O(n) check and falls
        back to the stable sort the old implementation always performed.
        """
        import heapq

        merged = list(
            heapq.merge(self.requests, other.requests, key=lambda r: r.timestamp)
        )
        if any(
            later.timestamp < earlier.timestamp
            for earlier, later in zip(merged, merged[1:])
        ):
            # Sort the *concatenation*, not the interleave, so ties land in
            # exactly the order the old always-sort implementation produced.
            merged = sorted(
                list(self.requests) + list(other.requests), key=lambda r: r.timestamp
            )
        log = RequestLog()
        log.requests = merged
        return log

    # --------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __getitem__(self, index: int) -> Request:
        return self.requests[index]

    @property
    def duration(self) -> float:
        """Time span covered by the log (0 for empty logs)."""
        if not self.requests:
            return 0.0
        return self.requests[-1].timestamp - self.requests[0].timestamp

    @property
    def read_count(self) -> int:
        """Number of read requests."""
        return sum(1 for r in self.requests if isinstance(r, ReadRequest))

    @property
    def write_count(self) -> int:
        """Number of write requests."""
        return sum(1 for r in self.requests if isinstance(r, WriteRequest))

    @property
    def mutation_count(self) -> int:
        """Number of graph mutations (edge additions and removals)."""
        return sum(1 for r in self.requests if isinstance(r, (EdgeAdded, EdgeRemoved)))

    def requests_per_day(self) -> dict[int, dict[str, int]]:
        """Read/write counts per simulated day (used to reproduce Figure 2)."""
        from ..constants import DAY

        days: dict[int, dict[str, int]] = {}
        for request in self.requests:
            day = int(request.timestamp // DAY)
            bucket = days.setdefault(day, {"reads": 0, "writes": 0})
            if isinstance(request, ReadRequest):
                bucket["reads"] += 1
            elif isinstance(request, WriteRequest):
                bucket["writes"] += 1
        return days

    def slice_time(self, start: float, end: float) -> "RequestLog":
        """Sub-log with requests whose timestamp lies in ``[start, end)``."""
        timestamps = [r.timestamp for r in self.requests]
        lo = bisect.bisect_left(timestamps, start)
        hi = bisect.bisect_left(timestamps, end)
        log = RequestLog()
        log.requests = self.requests[lo:hi]
        return log

    def validate(self) -> None:
        """Raise when the log is not sorted by timestamp."""
        for earlier, later in zip(self.requests, self.requests[1:]):
            if later.timestamp < earlier.timestamp:
                raise WorkloadError("request log is not sorted by timestamp")


__all__ = [
    "EdgeAdded",
    "EdgeRemoved",
    "ReadRequest",
    "Request",
    "RequestLog",
    "WriteRequest",
]
