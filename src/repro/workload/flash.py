"""Flash-event workload construction (paper section 4.6).

The experiment picks a random user, adds 100 random followers at day 2 and
removes them at day 7, then measures how the number of replicas of the user's
view and the per-replica read load evolve.  This module builds the small
event fragment produced by the flash crowd itself and merges it into an
existing workload.

Injection is a *merge of a small mutation stream*: the fragment (edge
mutations plus the followers' extra reads) is generated eagerly — it is tiny
compared to the base workload — sorted once, and combined with the base via
the stable k-way chunk merge.  The legacy object-list path performs the same
one-shot batch merge over sorted request lists instead of re-sorting the
union (the old implementation sorted the whole combined log per injection).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from heapq import merge as _heap_merge

from ..constants import DAY
from ..exceptions import WorkloadError
from ..socialgraph.graph import SocialGraph
from ..socialgraph.mutations import random_new_followers
from .requests import RequestLog
from .stream import (
    EventRow,
    EventStream,
    KIND_EDGE_ADD,
    KIND_EDGE_REMOVE,
    KIND_READ,
    NO_AUX,
    as_stream,
    merge_streams,
)


@dataclass(frozen=True)
class FlashEventSpec:
    """Description of one flash event."""

    target_user: int
    new_followers: tuple[int, ...]
    start_time: float
    end_time: float

    def __post_init__(self) -> None:
        if self.end_time <= self.start_time:
            raise WorkloadError("flash event must end after it starts")


def plan_flash_event(
    graph: SocialGraph,
    rng: random.Random,
    followers: int = 100,
    start_day: float = 2.0,
    end_day: float = 7.0,
    target_user: int | None = None,
) -> FlashEventSpec:
    """Choose a target user and the followers joining during the flash event."""
    users = graph.users
    if not users:
        raise WorkloadError("cannot plan a flash event on an empty graph")
    if target_user is None:
        target_user = users[rng.randrange(len(users))]
    pairs = random_new_followers(graph, target_user, followers, rng)
    return FlashEventSpec(
        target_user=target_user,
        new_followers=tuple(follower for follower, _ in pairs),
        start_time=start_day * DAY,
        end_time=end_day * DAY,
    )


def flash_event_rows(
    spec: FlashEventSpec,
    reads_per_follower_per_day: float,
    rng: random.Random,
) -> list[EventRow]:
    """Sorted event rows produced by the flash event itself.

    The new followers actively read their feed while they follow the target
    user; those extra reads are what drives DynaSoRe to replicate the hot
    view.
    """
    rows: list[EventRow] = []
    duration_days = (spec.end_time - spec.start_time) / DAY
    for follower in spec.new_followers:
        rows.append((KIND_EDGE_ADD, spec.start_time, follower, spec.target_user))
        rows.append((KIND_EDGE_REMOVE, spec.end_time, follower, spec.target_user))
        reads = int(round(reads_per_follower_per_day * duration_days))
        for _ in range(reads):
            timestamp = rng.uniform(spec.start_time, spec.end_time)
            rows.append((KIND_READ, timestamp, follower, NO_AUX))
    rows.sort(key=lambda row: row[1])
    return rows


def flash_event_stream(
    spec: FlashEventSpec,
    reads_per_follower_per_day: float,
    rng: random.Random,
) -> EventStream:
    """The flash fragment as a (small, eagerly built) chunked stream."""
    return EventStream.from_rows(flash_event_rows(spec, reads_per_follower_per_day, rng))


def flash_event_log(
    spec: FlashEventSpec,
    reads_per_follower_per_day: float,
    rng: random.Random,
) -> RequestLog:
    """Request log fragment produced by the flash event (object adapter)."""
    return flash_event_stream(spec, reads_per_follower_per_day, rng).materialise()


def inject_flash_stream(
    base: "EventStream | RequestLog",
    spec: FlashEventSpec,
    reads_per_follower_per_day: float = 4.0,
    seed: int = 7,
) -> EventStream:
    """Merge a flash event into a workload stream (lazy, chunk-level)."""
    rng = random.Random(seed)
    extra = flash_event_stream(spec, reads_per_follower_per_day, rng)
    return merge_streams(as_stream(base), extra)


def inject_flash_event(
    base_log: RequestLog,
    spec: FlashEventSpec,
    reads_per_follower_per_day: float = 4.0,
    seed: int = 7,
) -> RequestLog:
    """Merge a flash event into an existing request log (one-shot merge)."""
    rng = random.Random(seed)
    extra = flash_event_log(spec, reads_per_follower_per_day, rng)
    merged = RequestLog()
    merged.requests = list(
        _heap_merge(base_log.requests, extra.requests, key=lambda r: r.timestamp)
    )
    return merged


__all__ = [
    "FlashEventSpec",
    "flash_event_log",
    "flash_event_rows",
    "flash_event_stream",
    "inject_flash_event",
    "inject_flash_stream",
    "plan_flash_event",
]
