"""Flash-event workload construction (paper section 4.6).

The experiment picks a random user, adds 100 random followers at day 2 and
removes them at day 7, then measures how the number of replicas of the user's
view and the per-replica read load evolve.  This module injects the edge
mutations into an existing request log and keeps the bookkeeping needed to
track the hot view.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..constants import DAY
from ..exceptions import WorkloadError
from ..socialgraph.graph import SocialGraph
from ..socialgraph.mutations import random_new_followers
from .requests import EdgeAdded, EdgeRemoved, ReadRequest, RequestLog


@dataclass(frozen=True)
class FlashEventSpec:
    """Description of one flash event."""

    target_user: int
    new_followers: tuple[int, ...]
    start_time: float
    end_time: float

    def __post_init__(self) -> None:
        if self.end_time <= self.start_time:
            raise WorkloadError("flash event must end after it starts")


def plan_flash_event(
    graph: SocialGraph,
    rng: random.Random,
    followers: int = 100,
    start_day: float = 2.0,
    end_day: float = 7.0,
    target_user: int | None = None,
) -> FlashEventSpec:
    """Choose a target user and the followers joining during the flash event."""
    users = graph.users
    if not users:
        raise WorkloadError("cannot plan a flash event on an empty graph")
    if target_user is None:
        target_user = users[rng.randrange(len(users))]
    pairs = random_new_followers(graph, target_user, followers, rng)
    return FlashEventSpec(
        target_user=target_user,
        new_followers=tuple(follower for follower, _ in pairs),
        start_time=start_day * DAY,
        end_time=end_day * DAY,
    )


def flash_event_log(
    spec: FlashEventSpec,
    reads_per_follower_per_day: float,
    rng: random.Random,
) -> RequestLog:
    """Request log fragment produced by the flash event itself.

    The new followers actively read their feed while they follow the target
    user; those extra reads are what drives DynaSoRe to replicate the hot
    view.
    """
    log = RequestLog()
    events: list[tuple[float, object]] = []
    for follower in spec.new_followers:
        events.append((spec.start_time, EdgeAdded(spec.start_time, follower, spec.target_user)))
        events.append((spec.end_time, EdgeRemoved(spec.end_time, follower, spec.target_user)))
        duration_days = (spec.end_time - spec.start_time) / DAY
        reads = int(round(reads_per_follower_per_day * duration_days))
        for _ in range(reads):
            timestamp = rng.uniform(spec.start_time, spec.end_time)
            events.append((timestamp, ReadRequest(timestamp, follower)))
    events.sort(key=lambda item: item[0])
    log.requests = [event for _, event in events]
    return log


def inject_flash_event(
    base_log: RequestLog,
    spec: FlashEventSpec,
    reads_per_follower_per_day: float = 4.0,
    seed: int = 7,
) -> RequestLog:
    """Merge a flash event into an existing request log."""
    rng = random.Random(seed)
    extra = flash_event_log(spec, reads_per_follower_per_day, rng)
    return base_log.merged_with(extra)


__all__ = ["FlashEventSpec", "flash_event_log", "inject_flash_event", "plan_flash_event"]
