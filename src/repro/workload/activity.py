"""Per-user activity profiles (expected request rates) for load-aware sharding.

The sharded runner (:mod:`repro.simulator.shard`) splits one simulation's
request stream across worker processes.  Balancing shard *populations* is not
enough: per-shard CPU tracks the number of read/write events a shard owns,
and real social workloads concentrate activity on a few well-connected users
(Zipf popularity, celebrity storms).  This module produces the node weights
the k-way partitioner needs to balance *work* instead of users, two ways:

**Analytically** (:func:`analytic_activity`).  Every stream-native generator
draws its users from an explicit weight vector (log-degree propensities for
the synthetic model, rank-mapped Pareto draws for the news trace, follower
pile-ons for celebrity storms).  The expected number of events a user
contributes is therefore a closed-form function of the generator's
parameters — no events need to be generated.  The implementation reuses the
generators' own weight methods, so the analytic profile can never drift from
what the generators actually sample.

**By profiling** (:func:`profile_stream` / :func:`profile_trace`).  Workloads
loaded from binary trace files have no generative model, so the profiler
counts read/write events per user in a single columnar pass (one C-speed
``Counter.update`` over each chunk's ``users`` column).  For trace *files*
the count is cached in a sidecar next to the trace, content-addressed by the
trace's SHA-256, so a multi-run grid over one trace profiles it exactly
once.

Both produce an :class:`ActivityProfile` whose ``rates`` mapping feeds
``assign_user_shards(..., activity=...)`` and, through it,
``partition_kway(..., node_weights=...)``.  Only the *relative* magnitudes
matter; profiles are not normalised.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from ..exceptions import WorkloadError
from ..socialgraph.graph import SocialGraph
from .io import trace_content_hash
from .stream import KIND_EDGE_ADD, KIND_EDGE_REMOVE, KIND_WRITE, EventStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.spec import WorkloadSpec

__all__ = [
    "ACTIVITY_CACHE_VERSION",
    "ActivityProfile",
    "activity_cache_path",
    "activity_for_spec",
    "analytic_activity",
    "profile_stream",
    "profile_trace",
]

#: Bump when the sidecar layout or profiling semantics change, so stale
#: cache files from older code read as misses instead of wrong rates.
ACTIVITY_CACHE_VERSION = 1


@dataclass(frozen=True)
class ActivityProfile:
    """Per-user expected request rates (relative scale, not normalised).

    ``source`` records how the profile was obtained: ``"analytic"`` (closed
    form from generator parameters), ``"profiled"`` (counted from a stream)
    or ``"cache"`` (a profiled count served from a trace's sidecar file).
    """

    rates: dict[int, float] = field(default_factory=dict)
    source: str = "analytic"

    @property
    def total(self) -> float:
        """Sum of all rates (the expected event count for profiled sources)."""
        return sum(self.rates.values())

    def rate_of(self, user: int) -> float:
        """Expected request rate of one user (0.0 when unknown)."""
        return self.rates.get(user, 0.0)


# ---------------------------------------------------------------------------
# Columnar profiling
# ---------------------------------------------------------------------------
def profile_stream(stream: EventStream) -> ActivityProfile:
    """Count read/write events per user in one pass over the stream.

    Chunks without edge mutations — the overwhelmingly common case — are
    counted with a single ``Counter.update`` over the raw ``users`` column
    (CPython's C-accelerated ``_count_elements``); mixed chunks fall back to
    a filtered iteration so edge events never pollute the request counts.
    Edge mutations are excluded deliberately: the sharded runner replicates
    the decision plane, so only owned read/write execution differentiates
    per-shard CPU.
    """
    counts: Counter[int] = Counter()
    for chunk in stream.chunks():
        kinds = chunk.kinds.tobytes()
        if kinds.find(KIND_EDGE_ADD) < 0 and kinds.find(KIND_EDGE_REMOVE) < 0:
            counts.update(chunk.users)
        else:
            counts.update(
                user
                for kind, user in zip(chunk.kinds, chunk.users)
                if kind <= KIND_WRITE
            )
    return ActivityProfile(
        rates={user: float(count) for user, count in counts.items()},
        source="profiled",
    )


def activity_cache_path(path: str | os.PathLike) -> Path:
    """Sidecar file holding a trace's cached activity profile."""
    source = Path(path)
    return source.with_name(source.name + ".activity.json")


def profile_trace(path: str | os.PathLike, cache: bool = True) -> ActivityProfile:
    """Profile a binary trace file, serving repeats from a sidecar cache.

    The sidecar lives next to the trace (``<trace>.activity.json``) and is
    content-addressed: it records the trace's SHA-256, so a rewritten trace
    invalidates it automatically and moving the pair together keeps the hit.
    Cache writes are best effort (a read-only trace directory just means the
    profile is recomputed per run); a malformed sidecar reads as a miss.
    """
    from .io import read_trace

    source = Path(path)
    content_hash = trace_content_hash(source)
    sidecar = activity_cache_path(source)
    if cache:
        cached = _read_cache(sidecar, content_hash)
        if cached is not None:
            return cached
    profile = profile_stream(read_trace(source))
    if cache:
        _write_cache(sidecar, content_hash, profile)
    return profile


def _read_cache(sidecar: Path, content_hash: str) -> ActivityProfile | None:
    try:
        payload = json.loads(sidecar.read_text())
    except (OSError, ValueError):
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("version") != ACTIVITY_CACHE_VERSION
        or payload.get("content_hash") != content_hash
    ):
        return None
    users = payload.get("users")
    counts = payload.get("counts")
    if not isinstance(users, list) or not isinstance(counts, list):
        return None
    if len(users) != len(counts):
        return None
    try:
        rates = {int(user): float(count) for user, count in zip(users, counts)}
    except (TypeError, ValueError):
        return None
    return ActivityProfile(rates=rates, source="cache")


def _write_cache(sidecar: Path, content_hash: str, profile: ActivityProfile) -> None:
    users = sorted(profile.rates)
    payload = {
        "version": ACTIVITY_CACHE_VERSION,
        "content_hash": content_hash,
        "users": users,
        "counts": [profile.rates[user] for user in users],
    }
    try:
        tmp = sidecar.with_name(sidecar.name + ".tmp")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, sidecar)
    except OSError:
        pass


# ---------------------------------------------------------------------------
# Analytic profiles from generator parameters
# ---------------------------------------------------------------------------
def _normalised_expectation(
    weights: Mapping[int, float], total_events: float
) -> dict[int, float]:
    """Expected events per user when ``total_events`` draws follow ``weights``."""
    scale = sum(weights.values())
    if scale <= 0:
        return {user: 0.0 for user in weights}
    factor = total_events / scale
    return {user: weight * factor for user, weight in weights.items()}


def _merge_rates(target: dict[int, float], extra: Mapping[int, float]) -> None:
    for user, rate in extra.items():
        target[user] = target.get(user, 0.0) + rate


def _synthetic_rates(graph: SocialGraph, config) -> dict[int, float]:
    """Expected read+write events per user of the synthetic model."""
    from .synthetic import SyntheticWorkloadGenerator

    generator = SyntheticWorkloadGenerator(graph, config)
    total_writes = round(graph.num_users * config.writes_per_user_per_day * config.days)
    total_reads = round(total_writes * config.read_write_ratio)
    rates = _normalised_expectation(generator.write_weights(), total_writes)
    _merge_rates(rates, _normalised_expectation(generator.read_weights(), total_reads))
    return rates


def _trace_rates(graph: SocialGraph, config) -> dict[int, float]:
    """Expected events per user of the news-activity trace model.

    The generator's heavy-tailed per-user weights are themselves random
    draws, but they come from a dedicated seeded RNG
    (``{seed}:trace:profile``), so re-running ``activity_profile`` here
    reproduces *exactly* the weight vector the generator samples from.
    """
    import random

    from .trace import NewsActivityTraceGenerator

    generator = NewsActivityTraceGenerator(graph, config)
    profile_rng = random.Random(f"{config.seed}:trace:profile")
    weights = generator.activity_profile(profile_rng)
    total_writes = round(len(weights) * config.writes_per_user)
    total_events = total_writes * (1.0 + config.read_write_ratio)
    return _normalised_expectation(weights, total_events)


def _pareto_rates(graph: SocialGraph, config) -> dict[int, float]:
    """Expected events per user of the Pareto-burst model."""
    import math

    from .models import ParetoBurstWorkloadGenerator

    generator = ParetoBurstWorkloadGenerator(graph, config)
    weights = {
        user: 1.0 + math.log1p(graph.in_degree(user) + graph.out_degree(user))
        for user in graph.users
    }
    return _normalised_expectation(weights, generator.total_events())


def _celebrity_rates(graph: SocialGraph, config) -> dict[int, float]:
    """Expected events per user of the celebrity read-storm model.

    Background traffic reuses the synthetic expectation (the generator
    builds its background exactly that way); each storm adds one write for
    the celebrity and ``round(reads_per_follower)`` reads per follower.
    """
    from .models import CelebrityReadStormGenerator
    from .synthetic import SyntheticWorkloadConfig

    generator = CelebrityReadStormGenerator(graph, config)
    writes = config.background_events_per_user_per_day * (
        1.0 - config.background_read_fraction
    )
    ratio = config.background_read_fraction / (1.0 - config.background_read_fraction)
    rates = _synthetic_rates(
        graph,
        SyntheticWorkloadConfig(
            days=config.days,
            writes_per_user_per_day=writes,
            read_write_ratio=ratio,
            seed=config.seed,
        ),
    )
    reads_per_follower = round(config.reads_per_follower)
    for celebrity in generator.celebrity_users():
        storms = config.storms_per_celebrity
        rates[celebrity] = rates.get(celebrity, 0.0) + storms
        storm_reads = storms * reads_per_follower
        if storm_reads:
            for follower in graph.followers(celebrity):
                rates[follower] = rates.get(follower, 0.0) + storm_reads
    return rates


def analytic_activity(graph: SocialGraph, spec: "WorkloadSpec") -> ActivityProfile | None:
    """Closed-form activity profile for a generated workload spec.

    Returns ``None`` for workload kinds without a generative model (trace
    files) — callers fall back to :func:`profile_trace`.  A flash event
    merged into the workload is ignored: flash workloads track views, which
    the sharded runner rejects before any assignment is computed.
    """
    from ..workload.models import CelebrityStormConfig, ParetoBurstConfig
    from ..workload.synthetic import SyntheticWorkloadConfig
    from ..workload.trace import NewsActivityTraceConfig

    params = dict(spec.params)
    if spec.kind == "synthetic":
        rates = _synthetic_rates(
            graph, SyntheticWorkloadConfig(days=spec.days, seed=spec.seed, **params)
        )
    elif spec.kind == "trace":
        rates = _trace_rates(
            graph, NewsActivityTraceConfig(days=spec.days, seed=spec.seed, **params)
        )
    elif spec.kind == "pareto_burst":
        rates = _pareto_rates(
            graph, ParetoBurstConfig(days=spec.days, seed=spec.seed, **params)
        )
    elif spec.kind == "celebrity_storm":
        rates = _celebrity_rates(
            graph, CelebrityStormConfig(days=spec.days, seed=spec.seed, **params)
        )
    else:
        return None
    return ActivityProfile(rates=rates, source="analytic")


def activity_for_spec(spec: "WorkloadSpec", graph: SocialGraph) -> ActivityProfile:
    """Activity profile for any workload spec: analytic when the kind has a
    generative model, cached columnar profiling for trace files."""
    profile = analytic_activity(graph, spec)
    if profile is not None:
        return profile
    if spec.kind != "file" or not spec.path:  # pragma: no cover - defensive
        raise WorkloadError(f"no activity model for workload kind {spec.kind!r}")
    return profile_trace(spec.path)
