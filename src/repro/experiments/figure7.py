"""Figure 7 — crash-and-recover comparison (extension beyond the paper).

The paper evaluates DynaSoRe only under benign dynamics (flash crowds, edge
churn).  This experiment injects infrastructure faults: partway through a
synthetic day, several storage servers crash; later they rejoin empty.
Every strategy replays the *same* workload under the *same* fault stream
(scenario randomness derives from the profile seed), and we compare

* top-switch traffic, normalised against the Random baseline, as in the
  rest of the evaluation — recovery copies and re-convergence system
  traffic are part of the bill;
* how each strategy recovered the crashed servers' views: from surviving
  in-memory replicas (fast path) vs. from the WAL-backed persistent store
  (slow path).  DynaSoRe's adaptive replication keeps popular views
  replicated, so a large fraction recovers from memory; single-replica
  baselines always pay the slow path;
* availability: after the run every view must have at least one replica
  (``unavailable_views == 0``) and memory must be back within budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ExperimentProfile
from ..constants import DAY
from ..runtime.executor import RuntimeExecutor
from ..runtime.grid import RunGrid
from ..runtime.spec import ScenarioSpec
from ..simulator.results import FaultRecord, SimulationResult
from ..simulator.runner import normalise_results
from .common import (
    default_executor,
    graph_spec,
    simulation_config,
    synthetic_workload_spec,
    topology_spec,
)

#: Strategies compared under faults (the paper's main contenders).
FIGURE7_STRATEGIES = ("random", "spar", "dynasore_hmetis")


@dataclass
class StrategyFaultOutcome:
    """Traffic and recovery behaviour of one strategy under the fault stream."""

    top_switch_traffic: float
    normalised_traffic: float
    views_recovered_from_memory: int
    views_recovered_from_disk: int
    unavailable_views: int
    memory_in_use: int
    memory_capacity: int
    fault_records: list[FaultRecord] = field(default_factory=list)

    @property
    def memory_recovery_fraction(self) -> float:
        """Fraction of crashed views recovered without touching the disk."""
        total = self.views_recovered_from_memory + self.views_recovered_from_disk
        if total == 0:
            return 1.0
        return self.views_recovered_from_memory / total

    @property
    def fully_recovered(self) -> bool:
        """True when no view was lost and memory is back within budget."""
        return (
            self.unavailable_views == 0
            and self.memory_in_use <= self.memory_capacity
        )


@dataclass
class CrashRecoveryComparison:
    """Result of the crash-and-recover experiment."""

    dataset: str
    extra_memory_pct: float
    crashes: int
    crash_time: float
    recover_time: float
    outcomes: dict[str, StrategyFaultOutcome] = field(default_factory=dict)


def _outcome(
    result: SimulationResult, normalised: float, capacity: int
) -> StrategyFaultOutcome:
    return StrategyFaultOutcome(
        top_switch_traffic=result.top_switch_traffic,
        normalised_traffic=normalised,
        views_recovered_from_memory=sum(
            r.views_from_memory for r in result.fault_records
        ),
        views_recovered_from_disk=sum(
            r.views_from_disk for r in result.fault_records
        ),
        unavailable_views=result.unavailable_views,
        memory_in_use=result.memory_in_use,
        memory_capacity=capacity,
        fault_records=list(result.fault_records),
    )


def run_figure7(
    profile: ExperimentProfile,
    dataset: str = "facebook",
    extra_memory_pct: float = 50.0,
    crashes: int = 2,
    strategies: tuple[str, ...] | None = None,
    executor: RuntimeExecutor | None = None,
) -> CrashRecoveryComparison:
    """Run the crash-and-recover comparison at the profile's scale.

    ``crashes`` servers fail 35% into the trace and rejoin at 70%; the
    crashed positions are drawn deterministically from the profile seed
    (which every spec of the grid shares), so every strategy faces the
    identical fault stream.
    """
    if strategies is None:
        strategies = FIGURE7_STRATEGIES
    duration = profile.synthetic_days * DAY
    crash_time = duration * 0.35
    recover_time = duration * 0.70
    scenario = ScenarioSpec.of(
        "crash_recover",
        crash_time=crash_time,
        recover_time=recover_time,
        count=crashes,
    )

    grid = RunGrid.product(
        topology_spec(profile),
        graph_spec(profile, dataset),
        synthetic_workload_spec(profile),
        simulation_config(profile, extra_memory_pct),
        strategies,
        scenarios=[scenario],
    )
    runs = grid.run(default_executor(executor)).by_strategy()
    normalised = normalise_results(runs)
    # Memory budget of the runs (rebuilt here; every run shares it because
    # graph size and extra memory are identical across strategies).
    from ..store.memory import MemoryBudget

    topology = topology_spec(profile).build()
    capacity = MemoryBudget(
        # The generator creates exactly the requested number of users, so
        # the spec's count matches every run's graph without rebuilding it.
        views=graph_spec(profile, dataset).users,
        extra_memory_pct=extra_memory_pct,
        servers=len(topology.servers),
    ).total_capacity

    comparison = CrashRecoveryComparison(
        dataset=dataset,
        extra_memory_pct=extra_memory_pct,
        crashes=crashes,
        crash_time=crash_time,
        recover_time=recover_time,
    )
    for label, result in runs.items():
        comparison.outcomes[label] = _outcome(result, normalised[label], capacity)
    return comparison


__all__ = [
    "FIGURE7_STRATEGIES",
    "CrashRecoveryComparison",
    "StrategyFaultOutcome",
    "run_figure7",
]
