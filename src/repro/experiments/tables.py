"""Tables 2 and 3 — per-level switch traffic at 30% and 150% extra memory.

The paper's Tables 2 and 3 report, for the three social graphs, the average
traffic of top, intermediate and rack switches under DynaSoRe (initialised
from hMETIS) and SPAR, normalised by the corresponding switch traffic under
the Random baseline.  Table 2 uses 30% extra memory, Table 3 uses 150%.

Expected shape: DynaSoRe's relative traffic is far below SPAR's at every
level, the reduction is strongest at the top switch, and rack switches
benefit the least (paper: top ≈ 0.04–0.07 for DynaSoRe at 30%).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ExperimentProfile
from ..runtime.executor import RuntimeExecutor
from ..runtime.grid import RunGrid
from .common import (
    DATASETS,
    convergence_cutoff,
    default_executor,
    graph_spec,
    simulation_config,
    synthetic_workload_spec,
    topology_spec,
)

#: Switch levels reported by the tables.
LEVELS = ("top", "intermediate", "rack")

#: Strategies reported by the tables (normalised against Random).
TABLE_STRATEGIES = ("random", "spar", "dynasore_hmetis")


@dataclass
class SwitchTrafficTable:
    """Reproduction of Table 2 or Table 3."""

    extra_memory_pct: float
    #: dataset -> {(strategy, level) -> normalised traffic}
    cells: dict[str, dict[tuple[str, str], float]] = field(default_factory=dict)

    def value(self, dataset: str, strategy: str, level: str) -> float:
        """One normalised cell of the table."""
        return self.cells[dataset][(strategy, level)]


def run_switch_traffic_table(
    profile: ExperimentProfile,
    extra_memory_pct: float,
    datasets: tuple[str, ...] = DATASETS,
    executor: RuntimeExecutor | None = None,
) -> SwitchTrafficTable:
    """Run the simulations behind Table 2 (30%) or Table 3 (150%).

    The whole table is one dataset x strategy grid fanned out in a single
    executor call.
    """
    table = SwitchTrafficTable(extra_memory_pct=extra_memory_pct)
    config = simulation_config(
        profile, extra_memory_pct, measure_from=convergence_cutoff(profile)
    )
    grid = RunGrid.product(
        topology_spec(profile),
        [graph_spec(profile, dataset) for dataset in datasets],
        synthetic_workload_spec(profile),
        config,
        TABLE_STRATEGIES,
    )
    outcome = grid.run(default_executor(executor))
    for dataset in datasets:
        runs = outcome.by_strategy(dataset=dataset)
        baseline = runs["random"]
        cells: dict[tuple[str, str], float] = {}
        for label, run in runs.items():
            for level in LEVELS:
                reference = baseline.level_traffic(level)
                cells[(label, level)] = (
                    run.level_traffic(level) / reference if reference else 0.0
                )
        table.cells[dataset] = cells
    return table


def run_table2(
    profile: ExperimentProfile,
    datasets: tuple[str, ...] = DATASETS,
    executor: RuntimeExecutor | None = None,
) -> SwitchTrafficTable:
    """Table 2: per-level switch traffic with 30% extra memory."""
    return run_switch_traffic_table(profile, 30.0, datasets, executor=executor)


def run_table3(
    profile: ExperimentProfile,
    datasets: tuple[str, ...] = DATASETS,
    executor: RuntimeExecutor | None = None,
) -> SwitchTrafficTable:
    """Table 3: per-level switch traffic with 150% extra memory."""
    return run_switch_traffic_table(profile, 150.0, datasets, executor=executor)


__all__ = [
    "LEVELS",
    "SwitchTrafficTable",
    "TABLE_STRATEGIES",
    "run_switch_traffic_table",
    "run_table2",
    "run_table3",
]
