"""Figure 6 — convergence: application versus system traffic over time.

The paper's Figure 6 runs DynaSoRe on the Facebook graph with 150% extra
memory, starting from a random placement and from an hMETIS placement, with
synthetic (6a) and real (6b) request logs.  It plots the top-switch traffic
split into *application* traffic (reads/writes and their answers) and
*system* traffic (replication, routing updates and other protocol messages),
both normalised by the Random baseline's application traffic.

Expected shape: the system traffic spikes early while DynaSoRe replicates
aggressively, then decays as the placement converges; the application traffic
drops quickly and reaches a stable plateau within roughly a day of simulated
traffic; starting from hMETIS converges faster and produces less system
traffic than starting from Random.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ExperimentProfile
from ..constants import DAY
from ..runtime.executor import RuntimeExecutor
from ..runtime.grid import RunGrid
from ..simulator.results import SimulationResult
from .common import (
    default_executor,
    graph_spec,
    simulation_config,
    synthetic_workload_spec,
    topology_spec,
    trace_workload_spec,
)

#: Strategies whose convergence is studied (plus the normalising baseline).
FIGURE6_STRATEGIES = ("random", "dynasore_random", "dynasore_hmetis")


@dataclass
class ConvergenceSeries:
    """Application/system traffic per time bucket for one strategy."""

    strategy: str
    #: bucket day -> application traffic (normalised by Random's total rate)
    application: dict[float, float] = field(default_factory=dict)
    #: bucket day -> system traffic (same normalisation)
    system: dict[float, float] = field(default_factory=dict)

    def application_halves(self) -> tuple[float, float]:
        """Average application traffic in the first and second halves."""
        return _halves(self.application)

    def system_halves(self) -> tuple[float, float]:
        """Average system traffic in the first and second halves."""
        return _halves(self.system)


def _halves(series: dict[float, float]) -> tuple[float, float]:
    if not series:
        return (0.0, 0.0)
    days = sorted(series)
    midpoint = days[len(days) // 2]
    first = [series[d] for d in days if d < midpoint] or [series[days[0]]]
    second = [series[d] for d in days if d >= midpoint]
    return (sum(first) / len(first), sum(second) / len(second))


@dataclass
class ConvergenceResult:
    """Reproduction of Figure 6a or 6b."""

    workload: str
    extra_memory_pct: float
    series: dict[str, ConvergenceSeries] = field(default_factory=dict)


def _bucketed(result: SimulationResult, reference_rate: float) -> ConvergenceSeries:
    series = ConvergenceSeries(strategy=result.strategy_name)
    for bucket, (application, system) in result.top_switch_series(split=True).items():
        day = bucket * result.bucket_width / DAY
        series.application[day] = application / reference_rate if reference_rate else 0.0
        series.system[day] = system / reference_rate if reference_rate else 0.0
    return series


def run_convergence(
    profile: ExperimentProfile,
    workload: str,
    dataset: str = "facebook",
    extra_memory_pct: float = 150.0,
    strategies: tuple[str, ...] = FIGURE6_STRATEGIES,
    executor: RuntimeExecutor | None = None,
) -> ConvergenceResult:
    """Run the convergence experiment with ``workload`` in {synthetic, real}."""
    workload_spec = (
        synthetic_workload_spec(profile)
        if workload == "synthetic"
        else trace_workload_spec(profile)
    )
    grid = RunGrid.product(
        topology_spec(profile),
        graph_spec(profile, dataset),
        workload_spec,
        simulation_config(profile, extra_memory_pct),
        strategies,
    )
    runs = grid.run(default_executor(executor)).by_strategy()

    baseline = runs["random"]
    buckets = max(1, len(baseline.top_switch_series(split=False)))
    reference_rate = baseline.top_switch_traffic / buckets

    result = ConvergenceResult(workload=workload, extra_memory_pct=extra_memory_pct)
    for label, run in runs.items():
        if label == "random":
            continue
        result.series[label] = _bucketed(run, reference_rate)
    return result


def run_figure6a(profile: ExperimentProfile, **kwargs) -> ConvergenceResult:
    """Figure 6a: convergence with synthetic requests."""
    return run_convergence(profile, "synthetic", **kwargs)


def run_figure6b(profile: ExperimentProfile, **kwargs) -> ConvergenceResult:
    """Figure 6b: convergence with real (trace-like) requests."""
    return run_convergence(profile, "real", **kwargs)


__all__ = [
    "ConvergenceResult",
    "ConvergenceSeries",
    "FIGURE6_STRATEGIES",
    "run_convergence",
    "run_figure6a",
    "run_figure6b",
]
