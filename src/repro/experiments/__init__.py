"""Experiment harness regenerating every table and figure of the paper."""

from .datasets import DatasetRow, PAPER_TABLE1, run_table1
from .figure2 import DailyActivity, run_figure2, trace_summary
from .figure3 import (
    MemorySweepResult,
    run_figure3a,
    run_figure3b,
    run_figure3c,
    run_figure3d,
    run_memory_sweep,
)
from .figure4 import TrafficOverTime, run_figure4
from .figure5 import FlashEventOutcome, run_figure5
from .figure6 import ConvergenceResult, run_convergence, run_figure6a, run_figure6b
from .registry import EXPERIMENTS, Experiment, get_experiment
from .tables import SwitchTrafficTable, run_table2, run_table3

__all__ = [
    "ConvergenceResult",
    "DailyActivity",
    "DatasetRow",
    "EXPERIMENTS",
    "Experiment",
    "FlashEventOutcome",
    "MemorySweepResult",
    "PAPER_TABLE1",
    "SwitchTrafficTable",
    "TrafficOverTime",
    "get_experiment",
    "run_convergence",
    "run_figure2",
    "run_figure3a",
    "run_figure3b",
    "run_figure3c",
    "run_figure3d",
    "run_figure4",
    "run_figure5",
    "run_figure6a",
    "run_figure6b",
    "run_memory_sweep",
    "run_table1",
    "run_table2",
    "run_table3",
    "trace_summary",
]
