"""Registry of every reproducible experiment (figure/table → runner).

The registry lets the command-line runner (and EXPERIMENTS.md) refer to
experiments by the identifiers used in the paper: ``table1``, ``figure2``,
``figure3a`` … ``figure6b``, ``table2``, ``table3``.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..config import ExperimentProfile
from ..runtime.executor import RuntimeExecutor
from . import report
from .datasets import run_table1
from .figure2 import run_figure2
from .figure3 import run_figure3a, run_figure3b, run_figure3c, run_figure3d
from .figure4 import run_figure4
from .figure5 import run_figure5
from .figure6 import run_figure6a, run_figure6b
from .figure7 import run_figure7
from .tables import run_table2, run_table3


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment."""

    identifier: str
    description: str
    runner: Callable[..., object]
    renderer: Callable[[object], str]

    def run(
        self, profile: ExperimentProfile, executor: RuntimeExecutor | None = None
    ) -> object:
        """Run the experiment at the given profile's scale.

        ``executor`` (workers, result cache, progress reporting) is threaded
        into every runner; ``None`` means serial in-process execution.
        """
        return self.runner(profile, executor=executor)

    def run_and_render(
        self, profile: ExperimentProfile, executor: RuntimeExecutor | None = None
    ) -> str:
        """Run the experiment and return the paper-style text report."""
        return self.renderer(self.run(profile, executor=executor))


EXPERIMENTS: dict[str, Experiment] = {
    "table1": Experiment(
        "table1", "Datasets (users and links)", run_table1, report.render_table1
    ),
    "figure2": Experiment(
        "figure2", "Trace reads/writes per day", run_figure2, report.render_figure2
    ),
    "figure3a": Experiment(
        "figure3a",
        "Top-switch traffic vs extra memory (Twitter, tree)",
        run_figure3a,
        report.render_figure3,
    ),
    "figure3b": Experiment(
        "figure3b",
        "Top-switch traffic vs extra memory (LiveJournal, tree)",
        run_figure3b,
        report.render_figure3,
    ),
    "figure3c": Experiment(
        "figure3c",
        "Top-switch traffic vs extra memory (Facebook, tree)",
        run_figure3c,
        report.render_figure3,
    ),
    "figure3d": Experiment(
        "figure3d",
        "Top-switch traffic vs extra memory (Facebook, flat)",
        run_figure3d,
        report.render_figure3,
    ),
    "table2": Experiment(
        "table2", "Per-level switch traffic, 30% extra memory", run_table2, report.render_switch_table
    ),
    "table3": Experiment(
        "table3", "Per-level switch traffic, 150% extra memory", run_table3, report.render_switch_table
    ),
    "figure4": Experiment(
        "figure4",
        "Top-switch traffic over time (real trace, Facebook, 50%)",
        run_figure4,
        report.render_figure4,
    ),
    "figure5": Experiment(
        "figure5", "Flash event: replicas and reads per replica", run_figure5, report.render_figure5
    ),
    "figure6a": Experiment(
        "figure6a", "Convergence with synthetic requests", run_figure6a, report.render_figure6
    ),
    "figure6b": Experiment(
        "figure6b", "Convergence with real requests", run_figure6b, report.render_figure6
    ),
    "figure7": Experiment(
        "figure7",
        "Crash & recovery: traffic and availability under server failures",
        run_figure7,
        report.render_figure7,
    ),
}


def get_experiment(identifier: str) -> Experiment:
    """Look up an experiment by identifier (raises KeyError with guidance)."""
    if identifier not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {identifier!r}; known: {', '.join(sorted(EXPERIMENTS))}"
        )
    return EXPERIMENTS[identifier]


__all__ = ["EXPERIMENTS", "Experiment", "get_experiment"]
