"""Shared scaffolding of the experiment harness.

Every figure/table experiment needs the same ingredients: a topology built
from the profile's cluster spec, a scaled social graph, a request log, and
the set of strategies evaluated by the paper (Random, METIS, hMETIS, SPAR,
DynaSoRe from several initial placements).  This module translates an
:class:`~repro.config.ExperimentProfile` into the *declarative* spec layer
(:mod:`repro.runtime.spec`) that the figure/table modules expand into run
grids, and keeps the older imperative factory helpers used by
:func:`~repro.simulator.runner.run_simulation` and a handful of tests.
"""

from __future__ import annotations

from collections.abc import Callable

from ..baselines.base import PlacementStrategy
from ..config import ExperimentProfile, FlatClusterSpec, SimulationConfig
from ..runtime.executor import RuntimeExecutor
from ..runtime.spec import (
    GraphSpec,
    TopologySpec,
    WorkloadSpec,
    build_strategy,
)
from ..socialgraph.generators import dataset_preset, generate_social_graph
from ..socialgraph.graph import SocialGraph
from ..topology.base import ClusterTopology
from ..topology.flat import FlatTopology
from ..topology.tree import TreeTopology
from ..workload.requests import RequestLog
from ..workload.stream import EventStream
from ..workload.synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator
from ..workload.trace import NewsActivityTraceConfig, NewsActivityTraceGenerator

#: Names of the social graphs used by the paper's evaluation.
DATASETS = ("twitter", "facebook", "livejournal")


# ---------------------------------------------------------------- spec layer
def default_executor(executor: RuntimeExecutor | None) -> RuntimeExecutor:
    """The executor an experiment runs on: the given one, or serial/no-cache.

    Experiments accept ``executor=None`` so tests and library callers get
    plain in-process execution; the CLI builds a configured executor
    (workers, cache, progress) and threads it through.
    """
    return executor if executor is not None else RuntimeExecutor()


def topology_spec(profile: ExperimentProfile, flat: bool = False) -> TopologySpec:
    """Declarative topology of the profile (tree, or section 4.5's flat)."""
    if flat:
        return TopologySpec.flat(profile.flat_machines)
    return TopologySpec.tree(profile.cluster)


def graph_spec(profile: ExperimentProfile, dataset: str) -> GraphSpec:
    """Declarative scaled analogue of one paper dataset."""
    return GraphSpec(dataset=dataset, users=profile.users[dataset], seed=profile.seed)


def synthetic_workload_spec(profile: ExperimentProfile) -> WorkloadSpec:
    """Declarative synthetic request log (paper section 4.2)."""
    return WorkloadSpec(kind="synthetic", days=profile.synthetic_days, seed=profile.seed)


def trace_workload_spec(profile: ExperimentProfile) -> WorkloadSpec:
    """Declarative Yahoo!-News-Activity-like request log (section 4.2)."""
    return WorkloadSpec(kind="trace", days=profile.trace_days, seed=profile.seed)


def tree_topology_factory(profile: ExperimentProfile) -> Callable[[], ClusterTopology]:
    """Factory building the profile's tree topology."""
    return lambda: TreeTopology(profile.cluster)


def flat_topology_factory(profile: ExperimentProfile) -> Callable[[], ClusterTopology]:
    """Factory building the profile's flat topology (section 4.5)."""
    return lambda: FlatTopology(FlatClusterSpec(machines=profile.flat_machines))


def graph_factory(
    profile: ExperimentProfile, dataset: str
) -> Callable[[], SocialGraph]:
    """Factory building the scaled analogue of one paper dataset."""
    users = profile.users[dataset]
    spec = dataset_preset(dataset, users=users)
    return lambda: generate_social_graph(spec, seed=profile.seed)


def synthetic_stream(profile: ExperimentProfile, graph: SocialGraph) -> EventStream:
    """Synthetic workload stream for a graph (paper section 4.2)."""
    generator = SyntheticWorkloadGenerator(
        graph,
        SyntheticWorkloadConfig(days=profile.synthetic_days, seed=profile.seed),
    )
    return generator.stream()


def trace_stream(profile: ExperimentProfile, graph: SocialGraph) -> EventStream:
    """Yahoo!-News-Activity-like workload stream (paper section 4.2)."""
    generator = NewsActivityTraceGenerator(
        graph,
        NewsActivityTraceConfig(days=profile.trace_days, seed=profile.seed),
    )
    return generator.stream()


def synthetic_log(profile: ExperimentProfile, graph: SocialGraph) -> RequestLog:
    """Materialised synthetic request log (legacy object-list adapter)."""
    return synthetic_stream(profile, graph).materialise()


def trace_log(profile: ExperimentProfile, graph: SocialGraph) -> RequestLog:
    """Materialised trace-like request log (legacy object-list adapter)."""
    return trace_stream(profile, graph).materialise()


def simulation_config(
    profile: ExperimentProfile,
    extra_memory_pct: float,
    measure_from: float = 0.0,
) -> SimulationConfig:
    """Simulation configuration for one memory point.

    ``measure_from`` discards traffic recorded before that simulated time —
    the paper measures Figure 3 and the tables *after convergence*, so those
    experiments use the first part of the request log as a warm-up phase.
    """
    return SimulationConfig(
        extra_memory_pct=extra_memory_pct, measure_from=measure_from, seed=profile.seed
    )


def convergence_cutoff(profile: ExperimentProfile) -> float:
    """Simulated time after which steady-state traffic is measured.

    The paper observes that DynaSoRe almost reaches its best performance
    after a few hours of traffic; half the synthetic trace is a comfortable
    warm-up at every profile scale.
    """
    from ..constants import DAY

    return profile.synthetic_days * DAY / 2.0


def dynasore_config():
    """DynaSoRe tunables used by the experiments (the paper defaults)."""
    from ..config import DynaSoReConfig

    return DynaSoReConfig()


def strategy_factories(
    profile: ExperimentProfile, include: tuple[str, ...] | None = None
) -> dict[str, Callable[[], PlacementStrategy]]:
    """Factories of every strategy evaluated in the paper.

    Keys: ``random``, ``metis``, ``hmetis``, ``spar``, ``dynasore_random``,
    ``dynasore_metis``, ``dynasore_hmetis`` (the runtime's strategy
    registry).  ``include`` restricts the returned mapping while preserving
    this ordering.
    """
    from ..runtime.spec import STRATEGY_KEYS

    seed = profile.seed
    keys = STRATEGY_KEYS if include is None else include
    return {key: (lambda key=key: build_strategy(key, seed)) for key in keys}


__all__ = [
    "DATASETS",
    "default_executor",
    "dynasore_config",
    "flat_topology_factory",
    "graph_factory",
    "graph_spec",
    "simulation_config",
    "strategy_factories",
    "synthetic_log",
    "synthetic_stream",
    "synthetic_workload_spec",
    "topology_spec",
    "trace_log",
    "trace_stream",
    "trace_workload_spec",
    "tree_topology_factory",
]
