"""Shared scaffolding of the experiment harness.

Every figure/table experiment needs the same ingredients: a topology built
from the profile's cluster spec, a scaled social graph, a request log, and a
set of strategy factories (Random, METIS, hMETIS, SPAR, DynaSoRe from several
initial placements).  This module centralises their construction so the
per-experiment modules only contain the logic specific to their figure.
"""

from __future__ import annotations

from collections.abc import Callable

from ..baselines import (
    HierarchicalMetisPlacement,
    MetisPlacement,
    RandomPlacement,
    SparPlacement,
)
from ..baselines.base import PlacementStrategy
from ..config import DynaSoReConfig, ExperimentProfile, FlatClusterSpec, SimulationConfig
from ..core.engine import DynaSoRe
from ..socialgraph.generators import dataset_preset, generate_social_graph
from ..socialgraph.graph import SocialGraph
from ..topology.base import ClusterTopology
from ..topology.flat import FlatTopology
from ..topology.tree import TreeTopology
from ..workload.requests import RequestLog
from ..workload.synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator
from ..workload.trace import NewsActivityTraceConfig, NewsActivityTraceGenerator

#: Names of the social graphs used by the paper's evaluation.
DATASETS = ("twitter", "facebook", "livejournal")


def tree_topology_factory(profile: ExperimentProfile) -> Callable[[], ClusterTopology]:
    """Factory building the profile's tree topology."""
    return lambda: TreeTopology(profile.cluster)


def flat_topology_factory(profile: ExperimentProfile) -> Callable[[], ClusterTopology]:
    """Factory building the profile's flat topology (section 4.5)."""
    return lambda: FlatTopology(FlatClusterSpec(machines=profile.flat_machines))


def graph_factory(
    profile: ExperimentProfile, dataset: str
) -> Callable[[], SocialGraph]:
    """Factory building the scaled analogue of one paper dataset."""
    users = profile.users[dataset]
    spec = dataset_preset(dataset, users=users)
    return lambda: generate_social_graph(spec, seed=profile.seed)


def synthetic_log(profile: ExperimentProfile, graph: SocialGraph) -> RequestLog:
    """Synthetic request log for a graph (paper section 4.2)."""
    generator = SyntheticWorkloadGenerator(
        graph,
        SyntheticWorkloadConfig(days=profile.synthetic_days, seed=profile.seed),
    )
    return generator.generate()


def trace_log(profile: ExperimentProfile, graph: SocialGraph) -> RequestLog:
    """Yahoo!-News-Activity-like request log (paper section 4.2)."""
    generator = NewsActivityTraceGenerator(
        graph,
        NewsActivityTraceConfig(days=profile.trace_days, seed=profile.seed),
    )
    return generator.generate()


def simulation_config(
    profile: ExperimentProfile,
    extra_memory_pct: float,
    measure_from: float = 0.0,
) -> SimulationConfig:
    """Simulation configuration for one memory point.

    ``measure_from`` discards traffic recorded before that simulated time —
    the paper measures Figure 3 and the tables *after convergence*, so those
    experiments use the first part of the request log as a warm-up phase.
    """
    return SimulationConfig(
        extra_memory_pct=extra_memory_pct, measure_from=measure_from, seed=profile.seed
    )


def convergence_cutoff(profile: ExperimentProfile) -> float:
    """Simulated time after which steady-state traffic is measured.

    The paper observes that DynaSoRe almost reaches its best performance
    after a few hours of traffic; half the synthetic trace is a comfortable
    warm-up at every profile scale.
    """
    from ..constants import DAY

    return profile.synthetic_days * DAY / 2.0


def dynasore_config() -> DynaSoReConfig:
    """DynaSoRe tunables used by the experiments (the paper defaults)."""
    return DynaSoReConfig()


def strategy_factories(
    profile: ExperimentProfile, include: tuple[str, ...] | None = None
) -> dict[str, Callable[[], PlacementStrategy]]:
    """Factories of every strategy evaluated in the paper.

    Keys: ``random``, ``metis``, ``hmetis``, ``spar``, ``dynasore_random``,
    ``dynasore_metis``, ``dynasore_hmetis``.  ``include`` restricts the
    returned mapping while preserving this ordering.
    """
    seed = profile.seed
    factories: dict[str, Callable[[], PlacementStrategy]] = {
        "random": lambda: RandomPlacement(seed=seed),
        "metis": lambda: MetisPlacement(seed=seed),
        "hmetis": lambda: HierarchicalMetisPlacement(seed=seed),
        "spar": lambda: SparPlacement(seed=seed),
        "dynasore_random": lambda: DynaSoRe(
            initializer="random", config=dynasore_config(), seed=seed
        ),
        "dynasore_metis": lambda: DynaSoRe(
            initializer="metis", config=dynasore_config(), seed=seed
        ),
        "dynasore_hmetis": lambda: DynaSoRe(
            initializer="hmetis", config=dynasore_config(), seed=seed
        ),
    }
    if include is None:
        return factories
    return {label: factories[label] for label in include}


__all__ = [
    "DATASETS",
    "dynasore_config",
    "flat_topology_factory",
    "graph_factory",
    "simulation_config",
    "strategy_factories",
    "synthetic_log",
    "trace_log",
    "tree_topology_factory",
]
