"""Figure 2 — reads and writes per day in the Yahoo! News Activity trace.

The paper's Figure 2 plots, for the two-week proprietary trace, the number
of read and write requests per day (millions of events) and shows that the
trace is write-heavy with visible day-to-day variation.  This experiment
generates the synthetic analogue of the trace and reports the same per-day
series.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ExperimentProfile
from ..runtime.executor import RuntimeExecutor
from ..workload.stream import events_per_day
from .common import graph_spec, trace_workload_spec


@dataclass(frozen=True)
class DailyActivity:
    """Read and write counts for one simulated day."""

    day: int
    reads: int
    writes: int


def run_figure2(
    profile: ExperimentProfile,
    dataset: str = "facebook",
    executor: RuntimeExecutor | None = None,
) -> list[DailyActivity]:
    """Generate the trace and return its per-day read/write counts.

    A pure workload characterisation: no simulation runs, so ``executor``
    (accepted for registry uniformity) is unused.  The trace is consumed as
    a chunk stream — the per-day histogram never materialises an event.
    """
    del executor
    graph = graph_spec(profile, dataset).build()
    stream, _ = trace_workload_spec(profile).build_stream(graph)
    per_day = events_per_day(stream)
    return [
        DailyActivity(day=day, reads=counts["reads"], writes=counts["writes"])
        for day, counts in sorted(per_day.items())
    ]


def trace_summary(series: list[DailyActivity]) -> dict[str, float]:
    """Aggregate properties checked against the paper (write-heavy ratio)."""
    total_reads = sum(day.reads for day in series)
    total_writes = sum(day.writes for day in series)
    return {
        "total_reads": float(total_reads),
        "total_writes": float(total_writes),
        "write_read_ratio": (total_writes / total_reads) if total_reads else 0.0,
        "days": float(len(series)),
    }


__all__ = ["DailyActivity", "run_figure2", "trace_summary"]
