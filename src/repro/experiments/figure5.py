"""Figure 5 — flash events (paper section 4.6).

At day 2 a randomly chosen user gains 100 random followers; at day 7 they
unfollow.  The paper repeats this 100 times on the Facebook graph with 30%
extra memory and plots the average number of replicas of the hot view and
the average number of reads each replica serves per 10 minutes.

Expected shape: the replica count rises from ≈1 after the followers arrive,
stabilises (the paper converges near 5, one replica per intermediate
switch), the per-replica read load stays close to the pre-event level, and
the extra replicas are evicted shortly after the followers leave.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ExperimentProfile
from ..constants import DAY
from ..runtime.executor import RuntimeExecutor, execute_spec
from ..runtime.spec import FlashSpec, RunSpec, WorkloadSpec
from .common import default_executor, graph_spec, simulation_config, topology_spec


@dataclass
class FlashEventOutcome:
    """Averaged replica-count and read-load timelines across repetitions."""

    repetitions: int
    #: day -> average number of replicas of the hot view
    replicas_by_day: dict[float, float] = field(default_factory=dict)
    #: day -> average reads per replica per sampling window
    reads_per_replica_by_day: dict[float, float] = field(default_factory=dict)

    def replicas_during(self, start_day: float, end_day: float) -> float:
        """Average replica count over a day interval."""
        values = [
            value
            for day, value in self.replicas_by_day.items()
            if start_day <= day < end_day
        ]
        return sum(values) / len(values) if values else 0.0


def flash_run_spec(
    profile: ExperimentProfile,
    dataset: str,
    extra_memory_pct: float,
    followers: int,
    start_day: float,
    end_day: float,
    duration_days: float,
    seed: int,
) -> RunSpec:
    """Declarative spec of one flash-event repetition.

    The flash target is chosen by the workload builder (deterministically
    from ``seed``) and tracked automatically; the strategy is seeded per
    repetition so the repetitions are genuinely independent samples.
    """
    return RunSpec(
        topology=topology_spec(profile),
        graph=graph_spec(profile, dataset),
        workload=WorkloadSpec(
            kind="synthetic",
            days=duration_days,
            seed=seed,
            flash=FlashSpec(followers=followers, start_day=start_day, end_day=end_day),
        ),
        strategy="dynasore_hmetis",
        config=simulation_config(profile, extra_memory_pct),
        strategy_seed=seed,
    )


def run_flash_event_once(
    profile: ExperimentProfile,
    dataset: str,
    extra_memory_pct: float,
    followers: int,
    start_day: float,
    end_day: float,
    duration_days: float,
    seed: int,
) -> tuple[dict[float, float], dict[float, float]]:
    """One repetition: returns (replica count by day, reads/replica by day)."""
    result = execute_spec(
        flash_run_spec(
            profile,
            dataset,
            extra_memory_pct,
            followers,
            start_day,
            end_day,
            duration_days,
            seed,
        )
    )
    return _flash_timelines(result)


def _flash_timelines(result) -> tuple[dict[float, float], dict[float, float]]:
    """Extract the tracked flash target's timelines from a run result."""
    timeline = next(iter(result.tracked_views.values()))
    replicas = {time / DAY: float(count) for time, count in timeline.replica_counts}
    reads = {time / DAY: value for time, value in timeline.reads_per_replica}
    return replicas, reads


def run_figure5(
    profile: ExperimentProfile,
    dataset: str = "facebook",
    extra_memory_pct: float = 30.0,
    followers: int = 100,
    start_day: float = 2.0,
    end_day: float = 7.0,
    duration_days: float = 10.0,
    repetitions: int | None = None,
    executor: RuntimeExecutor | None = None,
) -> FlashEventOutcome:
    """Run the flash-event experiment and average across repetitions.

    The repetitions are declared as a grid of independently seeded specs
    and fanned out in one executor call.  The day samples of each
    repetition are rounded to a common grid (half a day) before averaging,
    so repetitions with slightly different sample times aggregate cleanly.
    """
    repetitions = repetitions if repetitions is not None else profile.flash_repetitions
    duration_days = min(duration_days, max(profile.synthetic_days, end_day + 1.0))
    start_day = min(start_day, duration_days / 3.0)
    end_day = min(end_day, duration_days * 0.8)
    if end_day <= start_day:
        end_day = start_day + max(0.5, duration_days / 4.0)

    specs = [
        flash_run_spec(
            profile,
            dataset,
            extra_memory_pct,
            followers,
            start_day,
            end_day,
            duration_days,
            seed=profile.seed + repetition,
        )
        for repetition in range(repetitions)
    ]
    results = default_executor(executor).run(specs)

    grid = 0.5
    replica_acc: dict[float, list[float]] = {}
    reads_acc: dict[float, list[float]] = {}
    for result in results:
        replicas, reads = _flash_timelines(result)
        for day, value in replicas.items():
            bucket = round(day / grid) * grid
            replica_acc.setdefault(bucket, []).append(value)
        for day, value in reads.items():
            bucket = round(day / grid) * grid
            reads_acc.setdefault(bucket, []).append(value)

    outcome = FlashEventOutcome(repetitions=repetitions)
    outcome.replicas_by_day = {
        day: sum(values) / len(values) for day, values in sorted(replica_acc.items())
    }
    outcome.reads_per_replica_by_day = {
        day: sum(values) / len(values) for day, values in sorted(reads_acc.items())
    }
    return outcome


__all__ = ["FlashEventOutcome", "flash_run_spec", "run_figure5", "run_flash_event_once"]
