"""Figure 4 — top-switch traffic over time with the real request trace.

The paper's Figure 4 replays the Yahoo! News Activity trace on the Facebook
graph with 50% extra memory and plots, per day, the top-switch traffic of
Random, SPAR and DynaSoRe (initialised from Random and from METIS),
normalised by Random.  The traffic follows the daily request pattern of
Figure 2, and DynaSoRe stays well below both baselines throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ExperimentProfile
from ..constants import DAY
from ..runtime.executor import RuntimeExecutor
from ..runtime.grid import RunGrid
from ..simulator.results import SimulationResult
from .common import (
    default_executor,
    graph_spec,
    simulation_config,
    topology_spec,
    trace_workload_spec,
)

#: Strategies plotted in Figure 4.
FIGURE4_STRATEGIES = ("random", "spar", "dynasore_random", "dynasore_metis")


@dataclass
class TrafficOverTime:
    """Per-day top-switch traffic series of every strategy."""

    dataset: str
    extra_memory_pct: float
    #: strategy label -> {day -> absolute top-switch traffic}
    series: dict[str, dict[int, float]] = field(default_factory=dict)
    #: strategy label -> total top-switch traffic over the whole run
    totals: dict[str, float] = field(default_factory=dict)

    def normalised_series(self, baseline: str = "random") -> dict[str, dict[int, float]]:
        """Every strategy's per-day traffic divided by the baseline's."""
        reference = self.series.get(baseline, {})
        normalised: dict[str, dict[int, float]] = {}
        for label, days in self.series.items():
            normalised[label] = {
                day: (value / reference[day] if reference.get(day) else 0.0)
                for day, value in days.items()
            }
        return normalised

    def normalised_totals(self, baseline: str = "random") -> dict[str, float]:
        """Total traffic of every strategy divided by the baseline's total."""
        reference = self.totals.get(baseline, 0.0)
        return {
            label: (value / reference if reference else 0.0)
            for label, value in self.totals.items()
        }


def _per_day_series(result: SimulationResult) -> dict[int, float]:
    """Collapse the bucketed top-switch series into per-day totals."""
    buckets_per_day = max(1, int(round(DAY / result.bucket_width)))
    per_day: dict[int, float] = {}
    for bucket, total in result.top_switch_series(split=False).items():
        day = bucket // buckets_per_day
        per_day[day] = per_day.get(day, 0.0) + total
    return per_day


def run_figure4(
    profile: ExperimentProfile,
    dataset: str = "facebook",
    extra_memory_pct: float = 50.0,
    strategies: tuple[str, ...] = FIGURE4_STRATEGIES,
    executor: RuntimeExecutor | None = None,
) -> TrafficOverTime:
    """Replay the real-trace experiment behind Figure 4."""
    grid = RunGrid.product(
        topology_spec(profile),
        graph_spec(profile, dataset),
        trace_workload_spec(profile),
        simulation_config(profile, extra_memory_pct),
        strategies,
    )
    runs = grid.run(default_executor(executor)).by_strategy()
    result = TrafficOverTime(dataset=dataset, extra_memory_pct=extra_memory_pct)
    for label, run in runs.items():
        result.series[label] = _per_day_series(run)
        result.totals[label] = run.top_switch_traffic
    return result


__all__ = ["FIGURE4_STRATEGIES", "TrafficOverTime", "run_figure4"]
