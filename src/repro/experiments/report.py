"""Plain-text rendering of experiment results.

The experiment modules return structured results; this module renders them
as the rows/series the paper reports, so the command-line runner and
EXPERIMENTS.md can show paper-style tables without any plotting dependency.
"""

from __future__ import annotations

from .datasets import DatasetRow
from .figure2 import DailyActivity
from .figure3 import MemorySweepResult
from .figure4 import TrafficOverTime
from .figure5 import FlashEventOutcome
from .figure6 import ConvergenceResult
from .figure7 import CrashRecoveryComparison
from .tables import LEVELS, SwitchTrafficTable


def _format_row(cells: list[str], widths: list[int]) -> str:
    return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))


def render_table1(rows: list[DatasetRow]) -> str:
    """Render the reproduced Table 1."""
    lines = ["Table 1 - datasets (paper scale vs generated scale)"]
    header = ["dataset", "paper users", "paper links", "gen users", "gen links", "avg deg"]
    widths = [12, 12, 12, 10, 10, 8]
    lines.append(_format_row(header, widths))
    for row in rows:
        lines.append(
            _format_row(
                [
                    row.dataset,
                    f"{row.paper_users:,}",
                    f"{row.paper_links:,}",
                    f"{row.generated_users:,}",
                    f"{row.generated_links:,}",
                    f"{row.avg_out_degree:.1f}",
                ],
                widths,
            )
        )
    return "\n".join(lines)


def render_figure2(series: list[DailyActivity]) -> str:
    """Render the per-day read/write counts of the trace."""
    lines = ["Figure 2 - trace activity per day", _format_row(["day", "reads", "writes"], [5, 10, 10])]
    for day in series:
        lines.append(_format_row([str(day.day), str(day.reads), str(day.writes)], [5, 10, 10]))
    return "\n".join(lines)


def render_figure3(result: MemorySweepResult) -> str:
    """Render a Figure 3 memory sweep (normalised top-switch traffic)."""
    strategies = sorted({s for values in result.points.values() for s in values})
    lines = [
        f"Figure 3 - top-switch traffic vs extra memory "
        f"({result.dataset}, {result.topology} topology, normalised by Random)"
    ]
    widths = [10] + [18] * len(strategies)
    lines.append(_format_row(["memory"] + strategies, widths))
    for memory in sorted(result.points):
        row = [f"{memory:.0f}%"] + [
            f"{result.points[memory].get(s, float('nan')):.3f}" for s in strategies
        ]
        lines.append(_format_row(row, widths))
    return "\n".join(lines)


def render_switch_table(table: SwitchTrafficTable) -> str:
    """Render Table 2 or Table 3."""
    lines = [f"Switch traffic normalised by Random, {table.extra_memory_pct:.0f}% extra memory"]
    datasets = sorted(table.cells)
    widths = [28] + [12] * len(datasets)
    lines.append(_format_row(["switch level / strategy"] + datasets, widths))
    for level in LEVELS:
        for strategy in ("dynasore_hmetis", "spar"):
            label = f"{level} {strategy}"
            row = [label] + [
                f"{table.value(dataset, strategy, level):.2f}" for dataset in datasets
            ]
            lines.append(_format_row(row, widths))
    return "\n".join(lines)


def render_figure4(result: TrafficOverTime) -> str:
    """Render the per-day normalised traffic of the real-trace experiment."""
    lines = [
        f"Figure 4 - top-switch traffic over time ({result.dataset}, "
        f"{result.extra_memory_pct:.0f}% extra memory, normalised by Random)"
    ]
    normalised = result.normalised_series()
    strategies = sorted(normalised)
    days = sorted({day for series in normalised.values() for day in series})
    widths = [6] + [18] * len(strategies)
    lines.append(_format_row(["day"] + strategies, widths))
    for day in days:
        row = [str(day)] + [
            f"{normalised[s].get(day, float('nan')):.3f}" for s in strategies
        ]
        lines.append(_format_row(row, widths))
    return "\n".join(lines)


def render_figure5(outcome: FlashEventOutcome) -> str:
    """Render the flash-event replica/read-load timelines."""
    lines = [f"Figure 5 - flash event ({outcome.repetitions} repetitions)"]
    widths = [8, 14, 18]
    lines.append(_format_row(["day", "avg replicas", "reads/replica"], widths))
    for day in sorted(outcome.replicas_by_day):
        lines.append(
            _format_row(
                [
                    f"{day:.1f}",
                    f"{outcome.replicas_by_day[day]:.2f}",
                    f"{outcome.reads_per_replica_by_day.get(day, 0.0):.2f}",
                ],
                widths,
            )
        )
    return "\n".join(lines)


def render_figure6(result: ConvergenceResult) -> str:
    """Render the convergence series (application and system traffic)."""
    lines = [
        f"Figure 6 - convergence ({result.workload} requests, "
        f"{result.extra_memory_pct:.0f}% extra memory)"
    ]
    for label, series in sorted(result.series.items()):
        lines.append(f"strategy: {label}")
        widths = [8, 16, 16]
        lines.append(_format_row(["day", "application", "system"], widths))
        for day in sorted(series.application):
            lines.append(
                _format_row(
                    [
                        f"{day:.2f}",
                        f"{series.application[day]:.4f}",
                        f"{series.system.get(day, 0.0):.4f}",
                    ],
                    widths,
                )
            )
    return "\n".join(lines)


def render_figure7(result: CrashRecoveryComparison) -> str:
    """Render the crash-and-recover comparison."""
    from ..constants import HOUR

    lines = [
        f"Figure 7 - crash and recovery ({result.dataset}, "
        f"{result.extra_memory_pct:.0f}% extra memory, {result.crashes} server(s) "
        f"crash at {result.crash_time / HOUR:.1f}h, recover at "
        f"{result.recover_time / HOUR:.1f}h; traffic normalised by Random)"
    ]
    widths = [18, 10, 12, 12, 10, 10]
    lines.append(
        _format_row(
            ["strategy", "traffic", "mem-recov", "disk-recov", "mem-frac", "recovered"],
            widths,
        )
    )
    for label in sorted(result.outcomes):
        outcome = result.outcomes[label]
        lines.append(
            _format_row(
                [
                    label,
                    f"{outcome.normalised_traffic:.3f}",
                    str(outcome.views_recovered_from_memory),
                    str(outcome.views_recovered_from_disk),
                    f"{outcome.memory_recovery_fraction:.0%}",
                    "yes" if outcome.fully_recovered else "NO",
                ],
                widths,
            )
        )
    return "\n".join(lines)


__all__ = [
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "render_figure5",
    "render_figure6",
    "render_figure7",
    "render_switch_table",
    "render_table1",
]
