"""Figure 3 — top-switch traffic versus extra memory capacity.

Figures 3a–3c plot, for the Twitter, LiveJournal and Facebook graphs on the
tree topology, the traffic crossing the top switch (normalised by the Random
baseline) as the cluster's extra memory grows from 0% to 200%.  The curves
compare SPAR against DynaSoRe initialised from Random, METIS and hierarchical
METIS placements.  Figure 3d repeats the Facebook experiment on a flat
topology (every machine is both cache and broker).

Expected shape (what the benchmarks assert): at every memory point DynaSoRe
uses the memory more efficiently than SPAR; the static partitioning
initialisations dominate the random initialisation; and all curves decrease
as memory grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ExperimentProfile
from ..runtime.executor import RuntimeExecutor
from ..runtime.grid import RunGrid
from .common import (
    convergence_cutoff,
    default_executor,
    graph_spec,
    simulation_config,
    synthetic_workload_spec,
    topology_spec,
)

#: Strategy labels plotted by Figure 3 (plus the normalising Random run).
FIGURE3_STRATEGIES = (
    "random",
    "spar",
    "dynasore_random",
    "dynasore_metis",
    "dynasore_hmetis",
)

#: The flat-topology variant omits hMETIS, as the paper does (no hierarchy).
FIGURE3_FLAT_STRATEGIES = ("random", "spar", "dynasore_random", "dynasore_metis")


@dataclass
class MemorySweepResult:
    """Normalised top-switch traffic per strategy per memory point."""

    dataset: str
    topology: str
    #: extra-memory percentage -> {strategy label -> normalised traffic}
    points: dict[float, dict[str, float]] = field(default_factory=dict)
    #: extra-memory percentage -> {strategy label -> absolute traffic}
    absolute: dict[float, dict[str, float]] = field(default_factory=dict)

    def series(self, strategy: str) -> list[tuple[float, float]]:
        """(extra memory, normalised traffic) series of one strategy."""
        return [
            (memory, values[strategy])
            for memory, values in sorted(self.points.items())
            if strategy in values
        ]


def run_memory_sweep(
    profile: ExperimentProfile,
    dataset: str,
    flat: bool = False,
    memory_points: tuple[float, ...] | None = None,
    strategies: tuple[str, ...] | None = None,
    executor: RuntimeExecutor | None = None,
) -> MemorySweepResult:
    """Run the Figure 3 sweep for one dataset on one topology.

    The sweep is declared as one strategy x memory grid and fanned out in a
    single executor call, so ``--jobs N`` parallelises across *both* axes.
    """
    if strategies is None:
        strategies = FIGURE3_FLAT_STRATEGIES if flat else FIGURE3_STRATEGIES
    if memory_points is None:
        memory_points = profile.memory_sweep

    cutoff = convergence_cutoff(profile)
    grid = RunGrid.product(
        topology_spec(profile, flat=flat),
        graph_spec(profile, dataset),
        synthetic_workload_spec(profile),
        [
            simulation_config(profile, memory, measure_from=cutoff)
            for memory in memory_points
        ],
        strategies,
    )
    outcome = grid.run(default_executor(executor))

    result = MemorySweepResult(dataset=dataset, topology="flat" if flat else "tree")
    for memory in memory_points:
        runs = outcome.by_strategy(extra_memory_pct=memory)
        reference = runs["random"].top_switch_traffic
        result.points[memory] = {
            label: (run.top_switch_traffic / reference if reference else 0.0)
            for label, run in runs.items()
        }
        result.absolute[memory] = {
            label: run.top_switch_traffic for label, run in runs.items()
        }
    return result


def run_figure3a(profile: ExperimentProfile, **kwargs) -> MemorySweepResult:
    """Figure 3a: Twitter graph, tree topology."""
    return run_memory_sweep(profile, "twitter", flat=False, **kwargs)


def run_figure3b(profile: ExperimentProfile, **kwargs) -> MemorySweepResult:
    """Figure 3b: LiveJournal graph, tree topology."""
    return run_memory_sweep(profile, "livejournal", flat=False, **kwargs)


def run_figure3c(profile: ExperimentProfile, **kwargs) -> MemorySweepResult:
    """Figure 3c: Facebook graph, tree topology."""
    return run_memory_sweep(profile, "facebook", flat=False, **kwargs)


def run_figure3d(profile: ExperimentProfile, **kwargs) -> MemorySweepResult:
    """Figure 3d: Facebook graph, flat topology."""
    return run_memory_sweep(profile, "facebook", flat=True, **kwargs)


__all__ = [
    "FIGURE3_FLAT_STRATEGIES",
    "FIGURE3_STRATEGIES",
    "MemorySweepResult",
    "run_figure3a",
    "run_figure3b",
    "run_figure3c",
    "run_figure3d",
    "run_memory_sweep",
]
