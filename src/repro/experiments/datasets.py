"""Table 1 — datasets used by the evaluation.

The paper's Table 1 lists the number of users and links of the Twitter,
Facebook and LiveJournal samples.  The reproduction generates scaled
analogues (see :mod:`repro.socialgraph.generators`); this experiment reports
both the paper's original numbers and the generated graphs' statistics so
the scale substitution is explicit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ExperimentProfile
from ..runtime.executor import RuntimeExecutor
from ..socialgraph.generators import graph_statistics
from .common import DATASETS, graph_spec

#: Numbers reported in the paper's Table 1.
PAPER_TABLE1 = {
    "twitter": {"users": 1_700_000, "links": 5_000_000},
    "facebook": {"users": 3_000_000, "links": 47_000_000},
    "livejournal": {"users": 4_800_000, "links": 69_000_000},
}


@dataclass(frozen=True)
class DatasetRow:
    """One row of the reproduced Table 1."""

    dataset: str
    paper_users: int
    paper_links: int
    generated_users: int
    generated_links: int
    avg_out_degree: float


def run_table1(
    profile: ExperimentProfile, executor: RuntimeExecutor | None = None
) -> list[DatasetRow]:
    """Generate every dataset at the profile's scale and summarise it.

    No simulation runs; ``executor`` is accepted for registry uniformity.
    """
    del executor
    rows: list[DatasetRow] = []
    for dataset in DATASETS:
        graph = graph_spec(profile, dataset).build()
        stats = graph_statistics(graph)
        rows.append(
            DatasetRow(
                dataset=dataset,
                paper_users=PAPER_TABLE1[dataset]["users"],
                paper_links=PAPER_TABLE1[dataset]["links"],
                generated_users=int(stats["users"]),
                generated_links=int(stats["edges"]),
                avg_out_degree=stats["avg_out_degree"],
            )
        )
    return rows


__all__ = ["DatasetRow", "PAPER_TABLE1", "run_table1"]
