"""Exception hierarchy for the DynaSoRe reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class ConfigurationError(ReproError):
    """Raised when a configuration object is inconsistent or out of range."""


class TopologyError(ReproError):
    """Raised for invalid cluster topologies or unknown devices."""


class CapacityError(ReproError):
    """Raised when the cluster cannot hold at least one replica per view."""


class StorageError(ReproError):
    """Raised for invalid storage-server operations (e.g. evicting the sole
    replica of a view or storing a duplicate replica)."""


class RoutingError(ReproError):
    """Raised when a view cannot be routed (no replica registered)."""


class WorkloadError(ReproError):
    """Raised for invalid workload specifications or malformed request logs."""


class PartitioningError(ReproError):
    """Raised when graph partitioning receives invalid input."""


class PersistenceError(ReproError):
    """Raised by the persistent store and write-ahead log substrate."""


class SimulationError(ReproError):
    """Raised when the simulator is asked to run an inconsistent scenario."""


class ShardFallbackError(SimulationError):
    """Raised when a partitioned shard worker detects an event outside the
    closed user universe (an edge endpoint or write target unknown to the
    initial graph).  The guard fires *before* the offending event executes,
    so no shard state has diverged; the coordinator catches this and
    restarts the run in replicated mode."""
